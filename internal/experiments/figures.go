package experiments

import (
	"fmt"
	"math"

	"pmemsched/internal/core"
	"pmemsched/internal/trace"
	"pmemsched/internal/units"
	"pmemsched/internal/workflow"
	"pmemsched/internal/workloads"
)

// Fig1 reproduces the motivation: two workflows that differ only in
// the analytics kernel, each run under the configuration optimal for
// the other. Tuning for a single component is not enough — the paper's
// Fig 1 shows a 1.4-1.6x loss for miniAMR, and §VII quantifies the
// same effect for GTC at 16 ranks as a ~24% loss.
//
// In this reproduction the miniAMR pair's winners sit on the
// documented knife-edge (see EXPERIMENTS.md), so the quantified checks
// anchor on the GTC pair, with the miniAMR table shown for the
// figure's shape.
func Fig1(rt *core.Runner) (*Report, error) {
	r := &Report{ID: "fig1", Title: "Performance of coupled workflows with different configurations"}
	const ranks = 16

	pair := func(name string, ro, mm workflow.Spec) (worst float64, cfgRO, cfgMM core.Config, err error) {
		roRes, err := runAll(ro, rt)
		if err != nil {
			return 0, core.Config{}, core.Config{}, err
		}
		mmRes, err := runAll(mm, rt)
		if err != nil {
			return 0, core.Config{}, core.Config{}, err
		}
		cfgRO = winner(roRes)
		cfgMM = winner(mmRes)
		t := &trace.Table{
			Title:   fmt.Sprintf("%s at %d ranks (1.00 = workflow's own best)", name, ranks),
			Columns: []string{"workflow", "config " + cfgRO.Label(), "config " + cfgMM.Label()},
		}
		roBest, mmBest := core.Best(roRes).TotalSeconds, core.Best(mmRes).TotalSeconds
		t.AddRow(ro.Name,
			fmtRatio(ratio(resultOf(roRes, cfgRO).TotalSeconds, roBest)),
			fmtRatio(ratio(resultOf(roRes, cfgMM).TotalSeconds, roBest)))
		t.AddRow(mm.Name,
			fmtRatio(ratio(resultOf(mmRes, cfgRO).TotalSeconds, mmBest)),
			fmtRatio(ratio(resultOf(mmRes, cfgMM).TotalSeconds, mmBest)))
		r.Table(t)
		worst = math.Max(
			ratio(resultOf(roRes, cfgMM).TotalSeconds, roBest),
			ratio(resultOf(mmRes, cfgRO).TotalSeconds, mmBest))
		return worst, cfgRO, cfgMM, nil
	}

	if _, _, _, err := pair("miniAMR pair (the paper's Fig 1 workloads)",
		workloads.MiniAMRReadOnly(ranks), workloads.MiniAMRMatrixMult(ranks)); err != nil {
		return nil, err
	}
	worst, cfgRO, cfgMM, err := pair("GTC pair (§VII's quantified analytics swap)",
		workloads.GTCReadOnly(ranks), workloads.GTCMatrixMult(ranks))
	if err != nil {
		return nil, err
	}
	r.Check("analytics swap without reconfiguring (GTC @16)",
		"~24% loss (§VII); miniAMR figure shows 1.4-1.6x", fmtRatio(worst), worst >= 1.015)
	r.Check("different kernels prefer different configs (GTC @16)",
		"configs differ", fmt.Sprintf("%s vs %s", cfgRO.Label(), cfgMM.Label()), cfgRO != cfgMM)
	return r, nil
}

// Table1 reproduces Table I: the configuration summary.
func Table1(*core.Runner) (*Report, error) {
	r := &Report{ID: "tab1", Title: "Summary of configurations"}
	t := &trace.Table{Columns: []string{"Config label", "Execution Mode", "Placement"}}
	for _, cfg := range core.Configs {
		mode := "Serial"
		if cfg.Mode == core.Parallel {
			mode = "Parallel"
		}
		t.AddRow(cfg.Label(), mode, cfg.Placement.String())
	}
	r.Table(t)
	r.Check("configuration space", "4 configurations (S|P x LocW|LocR)",
		fmt.Sprintf("%d configurations", len(core.Configs)), len(core.Configs) == 4)
	return r, nil
}

// Fig3 reproduces the workflow parameter space: the measured I/O
// indexes (standalone, node-local PMEM — §IV-A's definition) and
// configuration parameters of the application workflows.
func Fig3(rt *core.Runner) (*Report, error) {
	r := &Report{ID: "fig3", Title: "Workflow parameter space"}
	t := &trace.Table{Columns: []string{
		"workflow", "sim I/O index", "concurrency", "object size", "analytics I/O index"}}

	type wfgen struct {
		name string
		mk   func(int) workflow.Spec
	}
	gens := []wfgen{
		{"gtc+readonly", workloads.GTCReadOnly},
		{"gtc+matrixmult", workloads.GTCMatrixMult},
		{"miniamr+readonly", workloads.MiniAMRReadOnly},
		{"miniamr+matrixmult", workloads.MiniAMRMatrixMult},
	}
	distinctSim := map[workflow.IOLevel]bool{}
	distinctAna := map[workflow.IOLevel]bool{}
	for _, g := range gens {
		for _, ranks := range workloads.ConcurrencyLevels {
			wf := g.mk(ranks)
			f, err := rt.Classify(wf)
			if err != nil {
				return nil, err
			}
			t.AddRow(wf.Name,
				fmt.Sprintf("%.2f (%s)", f.SimProfile.IOIndex, f.SimWrite),
				f.Conc.String(),
				units.FormatBytes(wf.Simulation.Objects[0].Bytes),
				fmt.Sprintf("%.2f (%s)", f.AnaProfile.IOIndex, f.AnaRead))
			distinctSim[f.SimWrite] = true
			distinctAna[f.AnaRead] = true
		}
	}
	r.Table(t)
	r.Check("wide parameter coverage",
		"workflows span the axes (fan-out >= 2 per node)",
		fmt.Sprintf("%d sim I/O levels, %d analytics I/O levels", len(distinctSim), len(distinctAna)),
		len(distinctSim) >= 2 && len(distinctAna) >= 2)
	return r, nil
}

// runtimeFigure is the common shape of Figs 4-9: one workflow family
// at the three concurrency levels, all four configurations, split bars
// for serial runs.
func runtimeFigure(id, title string, mk func(int) workflow.Spec, rt *core.Runner,
	check func(r *Report, byRanks map[int][]core.Result)) (*Report, error) {
	r := &Report{ID: id, Title: title}
	byRanks := map[int][]core.Result{}
	for _, ranks := range workloads.ConcurrencyLevels {
		wf := mk(ranks)
		results, err := runAll(wf, rt)
		if err != nil {
			return nil, err
		}
		byRanks[ranks] = results
		dataGB := float64(wf.TotalBytes()) / 1e9
		r.Chart(fmt.Sprintf("Threads: %d, Data size: %.0fGB (seconds; serial bars split writer|reader)",
			ranks, dataGB), resultBars(results))
	}
	if check != nil {
		check(r, byRanks)
	}
	return r, nil
}

// checkWinner records a best-configuration claim for one subfigure.
func checkWinner(r *Report, results []core.Result, ranks int, want core.Config) {
	got := winner(results)
	r.Check(fmt.Sprintf("best config @ %d threads", ranks),
		want.Label(), got.Label(), got == want)
}

// checkRatio records an effect-size claim: num config's runtime over
// den config's runtime, expected within [lo, hi].
func checkRatio(r *Report, results []core.Result, ranks int, name string,
	num, den core.Config, paper string, lo, hi float64) {
	v := ratio(resultOf(results, num).TotalSeconds, resultOf(results, den).TotalSeconds)
	r.Check(fmt.Sprintf("%s @ %d threads", name, ranks), paper, fmtRatio(v), v >= lo && v <= hi)
}

// Fig4 reproduces "Benchmark Writer + Reader with 64MB objects":
// bandwidth-bound large-object streaming, where serial execution with
// local writes dominates (§VI-A).
func Fig4(rt *core.Runner) (*Report, error) {
	return runtimeFigure("fig4", "Benchmark Writer + Reader with 64MB objects: Runtime",
		func(ranks int) workflow.Spec { return workloads.MicroWorkflow(workloads.MicroObjectLarge, ranks) },
		rt, func(r *Report, byRanks map[int][]core.Result) {
			for _, ranks := range workloads.ConcurrencyLevels {
				checkWinner(r, byRanks[ranks], ranks, core.SLocW)
			}
			checkRatio(r, byRanks[24], 24, "S-LocR vs S-LocW",
				core.SLocR, core.SLocW, "up to 2.5x", 1.5, 3.5)
		})
}

// Fig5 reproduces "Benchmark Writer + Reader with 2K objects": high
// software overhead keeps bandwidth unconstrained, so local reads are
// prioritized; serial wins only at high concurrency via internal-cache
// contention (§VI-B, §VI-D).
func Fig5(rt *core.Runner) (*Report, error) {
	return runtimeFigure("fig5", "Benchmark Writer + Reader with 2K objects: Runtime",
		func(ranks int) workflow.Spec { return workloads.MicroWorkflow(workloads.MicroObjectSmall, ranks) },
		rt, func(r *Report, byRanks map[int][]core.Result) {
			checkWinner(r, byRanks[8], 8, core.PLocR)
			checkWinner(r, byRanks[16], 16, core.PLocR)
			checkWinner(r, byRanks[24], 24, core.SLocR)
			// Direction reproduces at both concurrencies; at 8 threads the
			// simulated parallel advantage (~1.5x) overshoots the paper's
			// 10-14% — recorded as measured so the gap is visible.
			checkRatio(r, byRanks[8], 8, "S-LocR vs P-LocR (direction)",
				core.SLocR, core.PLocR, "P-LocR 10-14% faster", 1.02, 2.2)
			checkRatio(r, byRanks[16], 16, "S-LocR vs P-LocR",
				core.SLocR, core.PLocR, "P-LocR 10-14% faster", 1.02, 1.45)
			// At 24 threads serial beats the best parallel by ~11.5%.
			best := resultOf(byRanks[24], core.PLocR).TotalSeconds
			if p := resultOf(byRanks[24], core.PLocW).TotalSeconds; p < best {
				best = p
			}
			v := ratio(best, resultOf(byRanks[24], core.SLocR).TotalSeconds)
			r.Check("parallel vs S-LocR @ 24 threads", "S-LocR 11.5% faster",
				fmtPct(v), v >= 1.02 && v <= 1.5)
		})
}

// Fig6 reproduces "GTC + Read only": a compute-intensive simulation
// with a few large objects. Parallel at low concurrency, serial
// read-priority at medium, serial write-priority at high (§VI).
func Fig6(rt *core.Runner) (*Report, error) {
	return runtimeFigure("fig6", "GTC + Read only: Runtime", workloads.GTCReadOnly,
		rt, func(r *Report, byRanks map[int][]core.Result) {
			checkWinner(r, byRanks[8], 8, core.PLocR)
			checkWinner(r, byRanks[16], 16, core.SLocR)
			checkWinner(r, byRanks[24], 24, core.SLocW)
			checkRatio(r, byRanks[24], 24, "S-LocR vs S-LocW",
				core.SLocR, core.SLocW, "S-LocW 6% faster", 1.01, 1.5)
		})
}

// Fig7 reproduces "GTC + matrixmult".
func Fig7(rt *core.Runner) (*Report, error) {
	return runtimeFigure("fig7", "GTC + matrixmult: Runtime", workloads.GTCMatrixMult,
		rt, func(r *Report, byRanks map[int][]core.Result) {
			checkWinner(r, byRanks[8], 8, core.PLocR)
			checkWinner(r, byRanks[16], 16, core.PLocR)
			checkWinner(r, byRanks[24], 24, core.SLocW)
			// Parallel overlap buys 3-9% over serial at low concurrency.
			bestSerial := math.Min(resultOf(byRanks[8], core.SLocW).TotalSeconds,
				resultOf(byRanks[8], core.SLocR).TotalSeconds)
			v := ratio(bestSerial, resultOf(byRanks[8], core.PLocR).TotalSeconds)
			r.Check("serial vs P-LocR @ 8 threads", "parallel 3-9% faster",
				fmtPct(v), v >= 1.005 && v <= 1.35)
		})
}

// Fig8 reproduces "miniAMR + Read only": an I/O-intensive simulation
// with many small objects.
func Fig8(rt *core.Runner) (*Report, error) {
	return runtimeFigure("fig8", "miniAMR + Read only: Runtime", workloads.MiniAMRReadOnly,
		rt, func(r *Report, byRanks map[int][]core.Result) {
			checkWinner(r, byRanks[8], 8, core.PLocR)
			checkWinner(r, byRanks[16], 16, core.SLocR)
			checkWinner(r, byRanks[24], 24, core.SLocW)
			checkRatio(r, byRanks[16], 16, "P-LocR vs S-LocR",
				core.PLocR, core.SLocR, "S-LocR 6% faster", 1.005, 1.4)
			checkRatio(r, byRanks[24], 24, "S-LocR vs S-LocW",
				core.SLocR, core.SLocW, "S-LocW 25% faster", 1.05, 1.9)
		})
}

// Fig9 reproduces "miniAMR + matrixmult": interleaved analytics
// compute flips the low-concurrency placement toward the simulation
// (§VI-C).
func Fig9(rt *core.Runner) (*Report, error) {
	return runtimeFigure("fig9", "miniAMR + matrixmult: Runtime", workloads.MiniAMRMatrixMult,
		rt, func(r *Report, byRanks map[int][]core.Result) {
			// Known deviation (see EXPERIMENTS.md): at 8 and 16 ranks the
			// simulated oracle picks the paper's execution mode but the
			// adjacent placement, with the two placements within ~1-3% of
			// each other. The mode — the first-order decision — and the
			// 24-rank row reproduce exactly.
			checkWinner(r, byRanks[8], 8, core.PLocW)
			checkWinner(r, byRanks[16], 16, core.SLocW)
			checkWinner(r, byRanks[24], 24, core.SLocW)
			r.Check("execution mode @ 8 threads", "parallel",
				winner(byRanks[8]).Mode.String(), winner(byRanks[8]).Mode == core.Parallel)
			r.Check("execution mode @ 16 threads", "serial",
				winner(byRanks[16]).Mode.String(), winner(byRanks[16]).Mode == core.Serial)
			checkRatio(r, byRanks[8], 8, "P-LocR vs P-LocW",
				core.PLocR, core.PLocW, "P-LocW 7% faster", 0.95, 1.35)
		})
}

// Fig10 reproduces the normalized-runtime summary: no single
// configuration is optimal across workflows, and a mis-configured
// workload loses up to ~70% (§VII).
func Fig10(rt *core.Runner) (*Report, error) {
	r := &Report{ID: "fig10", Title: "Workflow runtime normalized to the fastest configuration"}
	families := []struct {
		sub  string
		name string
		mk   func(int) workflow.Spec
	}{
		{"a", "GTC + Read-Only", workloads.GTCReadOnly},
		{"b", "GTC + MatrixMult", workloads.GTCMatrixMult},
		{"c", "miniAMR + Read-Only", workloads.MiniAMRReadOnly},
		{"d", "miniAMR + MatrixMult", workloads.MiniAMRMatrixMult},
	}
	winners := map[core.Config]bool{}
	maxNorm := 1.0
	var maxNormMiniAMR float64 = 1
	norm := map[string]map[int]map[core.Config]float64{}
	for _, fam := range families {
		t := &trace.Table{
			Title:   fmt.Sprintf("(%s) %s", fam.sub, fam.name),
			Columns: []string{"threads", "S-LocW", "S-LocR", "P-LocW", "P-LocR", "best"},
		}
		norm[fam.sub] = map[int]map[core.Config]float64{}
		for _, ranks := range workloads.ConcurrencyLevels {
			results, err := runAll(fam.mk(ranks), rt)
			if err != nil {
				return nil, err
			}
			best := core.Best(results)
			winners[best.Config] = true
			row := []any{fmt.Sprint(ranks)}
			norm[fam.sub][ranks] = map[core.Config]float64{}
			for _, cfg := range core.Configs {
				v := ratio(resultOf(results, cfg).TotalSeconds, best.TotalSeconds)
				norm[fam.sub][ranks][cfg] = v
				row = append(row, fmtRatio(v))
				if v > maxNorm {
					maxNorm = v
				}
				if fam.sub == "c" || fam.sub == "d" {
					if v > maxNormMiniAMR {
						maxNormMiniAMR = v
					}
				}
			}
			row = append(row, best.Config.Label())
			t.AddRow(row...)
		}
		r.Table(t)
	}
	r.Check("no single optimal configuration",
		"optimal config varies across workflows",
		fmt.Sprintf("%d distinct winners", len(winners)), len(winners) >= 3)
	r.Check("worst-case mis-configuration (miniAMR)",
		"up to ~70% slowdown", fmtPct(maxNormMiniAMR), maxNormMiniAMR >= 1.25)
	// §VII: with GTC at 16 threads, swapping the analytics kernel while
	// keeping the other workflow's best configuration loses ~24%
	// (comparing S-LocR and P-LocW-style choices across Fig 10a/10b).
	swapLoss := math.Max(norm["b"][16][core.SLocR], norm["a"][16][core.PLocR])
	r.Check("GTC analytics swap under fixed config @16",
		"~24% loss", fmtPct(swapLoss), swapLoss >= 1.02)
	return r, nil
}

// Table2 validates the paper's Table II recommendations: for every
// suite workload, the feature-based recommendation must match the
// simulated oracle's best configuration.
func Table2(rt *core.Runner) (*Report, error) {
	r := &Report{ID: "tab2", Title: "Configuration recommendations for workflows"}
	t := &trace.Table{Columns: []string{
		"workflow", "sim compute", "sim write", "ana compute", "ana read",
		"objects", "conc", "rule", "recommended", "oracle", "regret"}}
	matches, total := 0, 0
	var worstRegret float64
	for _, wf := range workloads.Suite() {
		rec, err := rt.RecommendWorkflow(wf)
		if err != nil {
			return nil, err
		}
		dec, err := rt.Oracle(wf)
		if err != nil {
			return nil, err
		}
		regret := dec.Regret(rec.Config)
		if regret > worstRegret {
			worstRegret = regret
		}
		match := rec.Config == dec.Best.Config
		total++
		if match {
			matches++
		}
		f := rec.Features
		t.AddRow(wf.Name, f.SimCompute.String(), f.SimWrite.String(),
			f.AnaCompute.String(), f.AnaRead.String(), f.ObjectSize.String(), f.Conc.String(),
			fmt.Sprintf("#%d", rec.Row.ID), rec.Config.Label(), dec.Best.Config.Label(),
			fmt.Sprintf("%.1f%%", regret*100))
	}
	r.Table(t)
	r.Check("rule-based recommendation matches oracle",
		"Table II row per workload", fmt.Sprintf("%d/%d matched", matches, total),
		matches >= total*8/10)
	r.Check("worst regret of rule-based choice",
		"near-optimal", fmt.Sprintf("%.1f%%", worstRegret*100), worstRegret <= 0.30)
	return r, nil
}
