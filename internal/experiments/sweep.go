package experiments

import (
	"fmt"

	"pmemsched/internal/core"
	"pmemsched/internal/numa"
	"pmemsched/internal/platform"
	"pmemsched/internal/pmem"
	"pmemsched/internal/trace"
	"pmemsched/internal/units"
	"pmemsched/internal/workflow"
	"pmemsched/internal/workloads"
)

// Sweep maps the configuration-crossover landscape beyond the paper's
// 18 measured points: a grid over object size × concurrency for the
// pure-streaming workflow, recording the oracle-best configuration in
// each cell. The paper's Fig 3 argues its suite spans the parameter
// space; the sweep fills the space in and shows where the regime
// boundaries (LocW↔LocR, serial↔parallel) actually fall.
func Sweep(rt *core.Runner) (*Report, error) {
	r := &Report{ID: "sweep", Title: "Configuration crossover map (object size x concurrency)"}

	sizes := []int64{2 * units.KiB, 16 * units.KiB, 256 * units.KiB, 4 * units.MiB, 64 * units.MiB}
	rankCounts := []int{4, 8, 12, 16, 20, 24}

	t := &trace.Table{
		Title:   "oracle-best configuration, pure-streaming workflow (1 GiB/rank-iteration)",
		Columns: append([]string{"object size"}, rankLabels(rankCounts)...),
	}
	winners := map[core.Config]int{}
	for _, size := range sizes {
		row := []any{units.FormatBytes(size)}
		for _, ranks := range rankCounts {
			wf := workloads.MicroWorkflow(size, ranks)
			dec, err := rt.Oracle(wf)
			if err != nil {
				return nil, err
			}
			winners[dec.Best.Config]++
			row = append(row, dec.Best.Config.Label())
		}
		t.AddRow(row...)
	}
	r.Table(t)

	// A second sweep holds the I/O fixed and varies the simulation's
	// compute intensity — the other Fig 3 axis — at medium concurrency.
	computes := []float64{0, 0.2, 0.5, 1.0, 2.0, 4.0}
	t2 := &trace.Table{
		Title:   "oracle-best vs simulation compute per iteration (64 MiB objects, 16 ranks)",
		Columns: []string{"compute/iter", "sim I/O index", "best config"},
	}
	for _, c := range computes {
		sim := workloads.Micro(workloads.MicroObjectLarge)
		sim.ComputePerIteration = c
		wf := workflow.Couple(fmt.Sprintf("sweep-c%.1f", c), sim, workloads.ReadOnly(), 16, workloads.Iterations)
		dec, err := rt.Oracle(wf)
		if err != nil {
			return nil, err
		}
		f, err := rt.Classify(wf)
		if err != nil {
			return nil, err
		}
		t2.AddRow(fmt.Sprintf("%.1fs", c), fmt.Sprintf("%.2f", f.SimProfile.IOIndex), dec.Best.Config.Label())
		winners[dec.Best.Config]++
	}
	r.Table(t2)

	r.Check("crossovers exist in both sweep axes",
		"no single configuration optimal (§VII)",
		fmt.Sprintf("%d distinct winners across the grid", len(winners)),
		len(winners) >= 2)
	return r, nil
}

func rankLabels(ranks []int) []string {
	out := make([]string, len(ranks))
	for i, r := range ranks {
		out[i] = fmt.Sprintf("%dr", r)
	}
	return out
}

// RuleTransfer asks whether Table II survives a device generation: it
// re-runs the oracle for every suite workload on a second-generation
// Optane model and counts how often the Gen-1-derived recommendation
// still matches. The rules encode relative trade-offs (write/read
// asymmetry, remote collapse, cache contention), not Gen-1's absolute
// peaks, so most rows should transfer.
func RuleTransfer(rt *core.Runner) (*Report, error) {
	r := &Report{ID: "gen2", Title: "Rule robustness on Gen-2 Optane"}
	gen2 := rt.Env()
	gen2.NewMachine = func() *platform.Machine {
		return platform.New(numa.TestbedConfig(), pmem.Gen2Optane())
	}
	gen2Rt := rt.WithEnv(gen2)
	t := &trace.Table{Columns: []string{"workflow", "rule (Gen-1 features)", "Gen-2 oracle", "transfers", "regret on Gen-2"}}
	match, total := 0, 0
	for _, wf := range workloads.Suite() {
		rec, err := rt.RecommendWorkflow(wf) // classify on Gen-1, as the rules were derived
		if err != nil {
			return nil, err
		}
		dec, err := gen2Rt.Oracle(wf)
		if err != nil {
			return nil, err
		}
		ok := rec.Config == dec.Best.Config
		total++
		if ok {
			match++
		}
		t.AddRow(wf.Name, rec.Config.Label(), dec.Best.Config.Label(), fmt.Sprint(ok),
			fmt.Sprintf("%.1f%%", dec.Regret(rec.Config)*100))
	}
	r.Table(t)
	r.Check("Gen-1 rules transfer to Gen-2",
		"qualitative trade-offs are not generation-specific",
		fmt.Sprintf("%d/%d rows keep their winner", match, total),
		match >= total*2/3)
	return r, nil
}

// JitterRobustness re-runs representative workloads with 10% per-rank
// compute imbalance injected into both components. The simulator's
// perfectly synchronized compute phases are an idealization; the
// paper's conclusions should not hinge on it. Each sentinel's winning
// configuration is compared against the balanced run's.
func JitterRobustness(rt *core.Runner) (*Report, error) {
	r := &Report{ID: "jitter", Title: "Robustness to compute-load imbalance (10% jitter)"}
	const jitter = 0.10
	sentinels := []workflow.Spec{
		workloads.MicroWorkflow(workloads.MicroObjectLarge, 24),
		workloads.MicroWorkflow(workloads.MicroObjectSmall, 16),
		workloads.GTCReadOnly(8),
		workloads.GTCReadOnly(24),
		workloads.MiniAMRReadOnly(16),
		workloads.MiniAMRMatrixMult(24),
	}
	t := &trace.Table{Columns: []string{"workflow", "balanced best", "jittered best", "stable", "jittered/balanced runtime"}}
	stable := 0
	for _, wf := range sentinels {
		balanced, err := rt.Oracle(wf)
		if err != nil {
			return nil, err
		}
		jwf := wf
		jwf.Simulation.ComputeJitter = jitter
		jwf.Analytics.ComputeJitter = jitter
		jittered, err := rt.Oracle(jwf)
		if err != nil {
			return nil, err
		}
		same := balanced.Best.Config == jittered.Best.Config
		if same {
			stable++
		}
		t.AddRow(wf.Name, balanced.Best.Config.Label(), jittered.Best.Config.Label(),
			fmt.Sprint(same),
			fmtRatio(ratio(jittered.Best.TotalSeconds, balanced.Best.TotalSeconds)))
	}
	r.Table(t)
	r.Check("winners stable under load imbalance",
		"conclusions not an artifact of perfect synchronization",
		fmt.Sprintf("%d/%d sentinels keep their winner", stable, len(sentinels)),
		stable >= len(sentinels)*2/3)
	return r, nil
}

// PlacementSpace validates the paper's Fig 2 deployment pruning on a
// larger machine: an exhaustive search over every (mode, simulation
// socket, analytics socket, channel socket) deployment of a four-socket
// node. The paper restricts attention to channels local to one of the
// two components; the search confirms that a channel remote to both
// never wins, and that the winning deployment reduces to the same
// Table I configuration the dual-socket oracle picks.
func PlacementSpace(rt *core.Runner) (*Report, error) {
	r := &Report{ID: "placement", Title: "Deployment-space search on a four-socket node"}
	four := rt.Env()
	four.NewMachine = func() *platform.Machine {
		return platform.New(numa.Config{
			Sockets:        4,
			CoresPerSocket: 28,
			DRAMBandwidth:  105 * units.GBps,
			UPIBandwidth:   21.6 * units.GBps,
		}, pmem.Gen1Optane())
	}
	fourRt := rt.WithEnv(four)
	cases := []workflow.Spec{
		workloads.MicroWorkflow(workloads.MicroObjectLarge, 24),
		workloads.GTCReadOnly(16),
		workloads.MiniAMRReadOnly(24),
	}
	t := &trace.Table{Columns: []string{
		"workflow", "deployments searched", "best deployment", "channel locality", "2-socket best"}}
	neverRemoteBoth := true
	sameAsTwoSocket := 0
	for _, wf := range cases {
		dec, err := fourRt.PlacementOracle(wf, 4)
		if err != nil {
			return nil, err
		}
		twoSocket, err := rt.Oracle(wf)
		if err != nil {
			return nil, err
		}
		loc := dec.Best.Deployment.Locality()
		if loc == core.ChannelRemoteToBoth {
			neverRemoteBoth = false
		}
		// Reduce the winning deployment to a Table I configuration.
		reduced := core.Config{Mode: dec.Best.Deployment.Mode, Placement: core.LocW}
		if loc == core.ChannelLocalToAna {
			reduced.Placement = core.LocR
		}
		if reduced == twoSocket.Best.Config {
			sameAsTwoSocket++
		}
		t.AddRow(wf.Name, len(dec.Results), dec.Best.Deployment.Label(), loc.String(),
			twoSocket.Best.Config.Label())
	}
	r.Table(t)
	r.Check("channel remote to both components never wins",
		"Fig 2 considers only component-local channels",
		fmt.Sprint(neverRemoteBoth), neverRemoteBoth)
	r.Check("search reduces to the dual-socket choice",
		"same Table I configuration",
		fmt.Sprintf("%d/%d workloads", sameAsTwoSocket, len(cases)),
		sameAsTwoSocket == len(cases))
	return r, nil
}
