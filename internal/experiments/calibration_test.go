package experiments

import (
	"testing"

	"pmemsched/internal/core"
	"pmemsched/internal/workflow"
	"pmemsched/internal/workloads"
)

// Calibration acceptance tests: these pin the qualitative paper
// outcomes the calibrated model reproduces — the winning configuration
// (or, for the two documented deviations, the winning execution mode)
// of every suite workload, and the headline effect sizes within loose
// bands. If a model or workload constant changes and breaks one of
// these, the change regressed the reproduction.
//
// Known deviations (also recorded in EXPERIMENTS.md): the two
// miniAMR+MatrixMult rows at 8 and 16 ranks pick the correct execution
// mode but the adjacent placement, with the alternatives within ~1-3%
// of each other (the paper's own margin on Fig 9a is 7%).

// expectation is one pinned outcome.
type expectation struct {
	wf       workflow.Spec
	winner   core.Config // exact winner, or
	modeOnly bool        // only the execution mode is pinned
}

func suiteExpectations() []expectation {
	sw, sr, pw, pr := core.SLocW, core.SLocR, core.PLocW, core.PLocR
	return []expectation{
		{workloads.MicroWorkflow(workloads.MicroObjectLarge, 8), sw, false},
		{workloads.MicroWorkflow(workloads.MicroObjectLarge, 16), sw, false},
		{workloads.MicroWorkflow(workloads.MicroObjectLarge, 24), sw, false},
		{workloads.MicroWorkflow(workloads.MicroObjectSmall, 8), pr, false},
		{workloads.MicroWorkflow(workloads.MicroObjectSmall, 16), pr, false},
		{workloads.MicroWorkflow(workloads.MicroObjectSmall, 24), sr, false},
		{workloads.GTCReadOnly(8), pr, false},
		{workloads.GTCReadOnly(16), sr, false},
		{workloads.GTCReadOnly(24), sw, false},
		{workloads.GTCMatrixMult(8), pr, false},
		{workloads.GTCMatrixMult(16), pr, false},
		{workloads.GTCMatrixMult(24), sw, false},
		{workloads.MiniAMRReadOnly(8), pr, false},
		{workloads.MiniAMRReadOnly(16), sr, false},
		{workloads.MiniAMRReadOnly(24), sw, false},
		// Documented deviations: mode pinned, placement measured within
		// ~1-3% of the paper's choice.
		{workloads.MiniAMRMatrixMult(8), pw, true},
		{workloads.MiniAMRMatrixMult(16), sw, true},
		{workloads.MiniAMRMatrixMult(24), sw, false},
	}
}

// TestSuiteWinnersMatchPaper is the headline acceptance test: the
// oracle-best configuration for every suite workload matches the
// paper's figure-by-figure reporting (Table II), exactly for 16 of 18
// rows and by execution mode for the two documented deviations.
func TestSuiteWinnersMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	env := core.DefaultEnv()
	for _, e := range suiteExpectations() {
		e := e
		t.Run(e.wf.Name, func(t *testing.T) {
			t.Parallel()
			dec, err := core.Oracle(e.wf, env)
			if err != nil {
				t.Fatal(err)
			}
			got := dec.Best.Config
			if e.modeOnly {
				if got.Mode != e.winner.Mode {
					t.Fatalf("winner %s has wrong mode (paper: %s)", got.Label(), e.winner.Label())
				}
				// The paper's placement must be within a few percent — the
				// deviation is a knife-edge, not a regime error.
				if r := dec.Regret(e.winner); r > 0.05 {
					t.Fatalf("paper's choice %s regrets %.1f%% (deviation no longer knife-edge)",
						e.winner.Label(), r*100)
				}
				return
			}
			if got != e.winner {
				t.Fatalf("winner %s, paper %s (regret of paper's choice: %.1f%%)",
					got.Label(), e.winner.Label(), dec.Regret(e.winner)*100)
			}
		})
	}
}

// TestRecommendationsMatchPaperRows checks the classifier+rule engine
// end to end: every suite workload must land on a Table II row whose
// configuration matches the paper's reported choice for that workload
// (independent of what the simulated oracle says).
func TestRecommendationsMatchPaperRows(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	env := core.DefaultEnv()
	for _, e := range suiteExpectations() {
		e := e
		t.Run(e.wf.Name, func(t *testing.T) {
			t.Parallel()
			rec, err := core.RecommendWorkflow(e.wf, env)
			if err != nil {
				t.Fatal(err)
			}
			if rec.Config != e.winner {
				t.Fatalf("rules pick %s (row %d), paper reports %s",
					rec.Config.Label(), rec.Row.ID, e.winner.Label())
			}
		})
	}
}

// TestHeadlineEffectSizes pins the paper's stated magnitudes within
// loose bands (shape, not absolute numbers).
func TestHeadlineEffectSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("effect sizes in -short mode")
	}
	env := core.DefaultEnv()
	type band struct {
		name     string
		wf       workflow.Spec
		num, den core.Config
		lo, hi   float64
	}
	bands := []band{
		// §VI-A: S-LocW "up to 2.5x better than other scenarios" for the
		// 64 MB workflows at high concurrency.
		{"micro64@24 S-LocR vs S-LocW", workloads.MicroWorkflow(workloads.MicroObjectLarge, 24),
			core.SLocR, core.SLocW, 1.6, 3.6},
		// §VI-A: miniAMR+RO at 24 threads, S-LocW 25% faster than S-LocR.
		{"miniamr+ro@24 S-LocR vs S-LocW", workloads.MiniAMRReadOnly(24),
			core.SLocR, core.SLocW, 1.03, 1.9},
		// §VI-A: GTC at 24 threads, S-LocW ~6% faster than S-LocR.
		{"gtc+ro@24 S-LocR vs S-LocW", workloads.GTCReadOnly(24),
			core.SLocR, core.SLocW, 1.01, 1.4},
		// §VI-B: 2K at 24 threads, S-LocR ~11.5% faster than parallel.
		{"micro2K@24 P-LocR vs S-LocR", workloads.MicroWorkflow(workloads.MicroObjectSmall, 24),
			core.PLocR, core.SLocR, 1.02, 1.6},
		// §VI-D: 2K at 16 threads, parallel faster than serial.
		{"micro2K@16 S-LocR vs P-LocR", workloads.MicroWorkflow(workloads.MicroObjectSmall, 16),
			core.SLocR, core.PLocR, 1.02, 1.6},
	}
	for _, b := range bands {
		b := b
		t.Run(b.name, func(t *testing.T) {
			t.Parallel()
			dec, err := core.Oracle(b.wf, env)
			if err != nil {
				t.Fatal(err)
			}
			var num, den float64
			for _, r := range dec.Results {
				if r.Config == b.num {
					num = r.TotalSeconds
				}
				if r.Config == b.den {
					den = r.TotalSeconds
				}
			}
			ratio := num / den
			if ratio < b.lo || ratio > b.hi {
				t.Fatalf("ratio %.3f outside [%.2f, %.2f]", ratio, b.lo, b.hi)
			}
		})
	}
}

// TestGTCCrossover pins the paper's three-way GTC + Read-Only
// crossover: parallel at 8 ranks, serial read-priority at 16, serial
// write-priority at 24 — the single most characteristic result of the
// evaluation.
func TestGTCCrossover(t *testing.T) {
	env := core.DefaultEnv()
	want := map[int]core.Config{8: core.PLocR, 16: core.SLocR, 24: core.SLocW}
	for ranks, cfg := range want {
		dec, err := core.Oracle(workloads.GTCReadOnly(ranks), env)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Best.Config != cfg {
			t.Errorf("GTC+RO@%d: winner %s, want %s", ranks, dec.Best.Config.Label(), cfg.Label())
		}
	}
}
