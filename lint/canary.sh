#!/usr/bin/env bash
# Canary for the pmemlint engine-invariant analyzers: plant one known
# violation per analyzer inside a scoped package, run pmemlint, and
# demand it fails with a diagnostic from that analyzer. A canary that
# stops failing means the analyzer has silently gone blind — the exact
# failure mode a lint gate cannot detect about itself.
#
# There are also negative canaries: plant code that a given analyzer
# must NOT flag (because the package is deliberately out of scope) and
# demand pmemlint stays quiet. Those guard the scope boundaries — a
# scope regex that silently widens would start rejecting legal daemon
# code.
#
# Usage: lint/canary.sh /path/to/pmemlint
set -u

PMEMLINT=${1:?usage: lint/canary.sh /path/to/pmemlint}
cd "$(dirname "$0")/.."

PLANT=zz_canary_test_plant.go
trap 'rm -f internal/cluster/$PLANT internal/schedd/$PLANT internal/core/$PLANT' EXIT

fail=0

# plant_in <dir> <name> <expected-analyzer>: reads the canary source
# from stdin, writes it into <dir>, and asserts pmemlint rejects it
# with a diagnostic from the expected analyzer.
plant_in() {
  local dir=$1 name=$2 expect=$3 out status
  cat > "$dir/$PLANT"
  out=$("$PMEMLINT" "./$dir/" 2>&1)
  status=$?
  rm -f "$dir/$PLANT"
  if [ "$status" -eq 0 ]; then
    echo "canary $name: pmemlint passed; expected a $expect diagnostic" >&2
    fail=1
  elif ! printf '%s\n' "$out" | grep -q "($expect)"; then
    echo "canary $name: pmemlint failed but not with a $expect diagnostic:" >&2
    printf '%s\n' "$out" >&2
    fail=1
  else
    echo "canary $name: ok ($expect fired)"
  fi
}

# plant_quiet <dir> <name> <analyzer>: the negative canary. Reads
# source from stdin that <analyzer> must NOT flag in <dir>; asserts
# pmemlint passes the package with the plant in place.
plant_quiet() {
  local dir=$1 name=$2 analyzer=$3 out status
  cat > "$dir/$PLANT"
  out=$("$PMEMLINT" "./$dir/" 2>&1)
  status=$?
  rm -f "$dir/$PLANT"
  if [ "$status" -ne 0 ]; then
    echo "canary $name: pmemlint flagged code that is deliberately legal here ($analyzer scope widened?):" >&2
    printf '%s\n' "$out" >&2
    fail=1
  else
    echo "canary $name: ok ($analyzer stayed quiet)"
  fi
}

plant() { plant_in internal/cluster "$1" "$2"; }

# 1. An epoch-less completion re-post.
plant eventorder eventorder <<'EOF'
package cluster

func zzCanaryEventorder(end float64) event {
	return event{at: end, kind: evComplete, job: 1}
}
EOF

# 2. A report field that serializes unconditionally.
plant jsoncontract jsoncontract <<'EOF'
package cluster

type zzCanaryReport struct {
	Always float64 `json:"always"`
}
EOF

# 3. A float sum over randomized map order.
plant floatdet floatdet <<'EOF'
package cluster

func zzCanaryFloatdet(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
EOF

# 4. A silently discarded error.
plant errflow errflow <<'EOF'
package cluster

import "os"

func zzCanaryErrflow(f *os.File) {
	f.Close()
}
EOF

# 5. errflow also covers the daemon package: a dropped error in
# internal/schedd must fire just like one in internal/cluster.
plant_in internal/schedd errflow-schedd errflow <<'EOF'
package schedd

import "os"

func zzCanaryErrflow(f *os.File) {
	f.Close()
}
EOF

# 6. An unhashed tier field: a cache key over a tier-shaped struct
# that samples the policy but drops the DRAM budget. The fingerprint
# analyzer only patrols internal/core, where the real run keys live.
plant_in internal/core fingerprint-tier fingerprint <<'EOF'
package core

import (
	"fmt"
	"strings"

	"pmemsched/internal/workflow"
)

type zzCanaryTierKeyInput struct {
	Policy           workflow.TierPolicy
	DRAMBytesPerRank int64
}

func zzCanaryTierKey(t zzCanaryTierKeyInput) string {
	var b strings.Builder
	fmt.Fprintf(&b, "pol=%d", t.Policy)
	return b.String()
}
EOF

# 7. A raw tier drain rate: calibrated tier constants must go through
# internal/units like every other bandwidth.
plant unitsafety-tier unitsafety <<'EOF'
package cluster

var zzCanaryTierDrainBytesPerSecond = 2e9

func zzCanaryTierDrain() float64 { return zzCanaryTierDrainBytesPerSecond }
EOF

# 8. Negative: the daemon measures real request latency, so wallclock
# deliberately excludes internal/schedd. time.Now there is legal and
# must stay legal.
plant_quiet internal/schedd wallclock-schedd wallclock <<'EOF'
package schedd

import "time"

func zzCanaryWallclock() time.Time {
	return time.Now()
}
EOF

# The tree itself must still be clean after the canaries are removed.
for dir in internal/cluster internal/schedd internal/core; do
  if ! "$PMEMLINT" "./$dir/" > /dev/null 2>&1; then
    echo "canary cleanup: $dir is not clean without the plants" >&2
    fail=1
  fi
done

exit "$fail"
