#!/usr/bin/env bash
# Canary for the pmemlint engine-invariant analyzers: plant one known
# violation per analyzer inside internal/cluster (the package all four
# scope to), run pmemlint, and demand it fails with a diagnostic from
# that analyzer. A canary that stops failing means the analyzer has
# silently gone blind — the exact failure mode a lint gate cannot
# detect about itself.
#
# Usage: lint/canary.sh /path/to/pmemlint
set -u

PMEMLINT=${1:?usage: lint/canary.sh /path/to/pmemlint}
cd "$(dirname "$0")/.."

CANARY=internal/cluster/zz_canary_test_plant.go
trap 'rm -f "$CANARY"' EXIT

fail=0

# plant <name> <expected-analyzer>: reads the canary source from stdin,
# writes it into internal/cluster, and asserts pmemlint rejects it.
plant() {
  local name=$1 expect=$2 out status
  cat > "$CANARY"
  out=$("$PMEMLINT" ./internal/cluster/ 2>&1)
  status=$?
  rm -f "$CANARY"
  if [ "$status" -eq 0 ]; then
    echo "canary $name: pmemlint passed; expected a $expect diagnostic" >&2
    fail=1
  elif ! printf '%s\n' "$out" | grep -q "($expect)"; then
    echo "canary $name: pmemlint failed but not with a $expect diagnostic:" >&2
    printf '%s\n' "$out" >&2
    fail=1
  else
    echo "canary $name: ok ($expect fired)"
  fi
}

# 1. An epoch-less completion re-post.
plant eventorder eventorder <<'EOF'
package cluster

func zzCanaryEventorder(end float64) event {
	return event{at: end, kind: evComplete, job: 1}
}
EOF

# 2. A report field that serializes unconditionally.
plant jsoncontract jsoncontract <<'EOF'
package cluster

type zzCanaryReport struct {
	Always float64 `json:"always"`
}
EOF

# 3. A float sum over randomized map order.
plant floatdet floatdet <<'EOF'
package cluster

func zzCanaryFloatdet(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
EOF

# 4. A silently discarded error.
plant errflow errflow <<'EOF'
package cluster

import "os"

func zzCanaryErrflow(f *os.File) {
	f.Close()
}
EOF

# The tree itself must still be clean after the canaries are removed.
if ! "$PMEMLINT" ./internal/cluster/ > /dev/null 2>&1; then
  echo "canary cleanup: internal/cluster is not clean without the plants" >&2
  fail=1
fi

exit "$fail"
