package pmemsched_test

// One benchmark per table and figure of the paper's evaluation: each
// regenerates the artifact end to end on the simulated platform (all
// configurations, all concurrency levels) and fails the run if the
// experiment errors. Use
//
//	go test -bench=. -benchmem
//
// to regenerate everything; -bench=BenchmarkFig4 for one artifact. The
// rendered rows/series are printed by cmd/wfsuite; the benchmarks
// measure the cost of regeneration itself and double as end-to-end
// smoke coverage of the full pipeline.

import (
	"testing"

	"pmemsched"
)

// benchExperiment runs one paper artifact per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := pmemsched.ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	env := pmemsched.DefaultEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh engine per iteration: the benchmark measures the cost
		// of regenerating the artifact, not of hitting a warm cache.
		rep, err := exp.Run(pmemsched.NewRunner(env, 0))
		if err != nil {
			b.Fatal(err)
		}
		if ok, total := rep.Matched(); total > 0 && ok == 0 {
			b.Fatalf("%s: no paper claims matched (%d checks)", id, total)
		}
	}
}

// BenchmarkFig1 regenerates the motivation figure: miniAMR workflows
// under configurations tuned for the other's analytics kernel.
func BenchmarkFig1(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkTable1 regenerates Table I (the configuration summary).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "tab1") }

// BenchmarkFig3 regenerates the workflow parameter space (measured I/O
// indexes for the application workflows).
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4 regenerates Fig 4: the 64 MB-object microbenchmark at
// 8/16/24 threads under all four configurations.
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5 regenerates Fig 5: the 2 KB-object microbenchmark.
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6 regenerates Fig 6: GTC + Read-Only.
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7 regenerates Fig 7: GTC + MatrixMult.
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8 regenerates Fig 8: miniAMR + Read-Only.
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Fig 9: miniAMR + MatrixMult.
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Fig 10: runtimes normalized to the
// fastest configuration for every application workflow.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkTable2 regenerates Table II: classify every suite workload,
// apply the recommendation rules, and validate against the oracle.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "tab2") }

// BenchmarkStackComparison regenerates the §VII storage-mechanism
// comparison (NOVA vs NVStream).
func BenchmarkStackComparison(b *testing.B) { benchExperiment(b, "stackcmp") }

// BenchmarkAblations regenerates the device-model ablations (which
// modeled mechanism backs which scheduling rule).
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "ablation") }

// BenchmarkSingleRun measures the cost of one workflow execution under
// one configuration — the simulator's unit of work.
func BenchmarkSingleRun(b *testing.B) {
	wf := pmemsched.GTCReadOnly(16)
	env := pmemsched.DefaultEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pmemsched.Run(wf, pmemsched.SLocW, env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOracle measures a full four-configuration oracle decision.
func BenchmarkOracle(b *testing.B) {
	wf := pmemsched.MiniAMRReadOnly(16)
	env := pmemsched.DefaultEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pmemsched.Oracle(wf, env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClassify measures the profiling+classification step the
// auto-scheduler performs per workflow.
func BenchmarkClassify(b *testing.B) {
	wf := pmemsched.MiniAMRMatrixMult(16)
	env := pmemsched.DefaultEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pmemsched.Classify(wf, env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweep regenerates the extension crossover map (object size
// x concurrency grid of oracle-best configurations).
func BenchmarkSweep(b *testing.B) { benchExperiment(b, "sweep") }

// BenchmarkGen2Transfer regenerates the rule-robustness experiment on
// the Gen-2 Optane model.
func BenchmarkGen2Transfer(b *testing.B) { benchExperiment(b, "gen2") }

// BenchmarkJitterRobustness regenerates the load-imbalance robustness
// experiment.
func BenchmarkJitterRobustness(b *testing.B) { benchExperiment(b, "jitter") }

// BenchmarkPlacementSpace regenerates the four-socket deployment-space
// search (validating the paper's Fig 2 pruning).
func BenchmarkPlacementSpace(b *testing.B) { benchExperiment(b, "placement") }

// BenchmarkOnlineSched runs the bundled 18-workload arrival trace
// through the online cluster scheduler at every load factor, comparing
// the PMEM-aware policy against each fixed site-wide configuration.
func BenchmarkOnlineSched(b *testing.B) { benchExperiment(b, "online") }

// BenchmarkFaultSched runs the online trace on an unreliable 2-node
// cluster at three seeded failure rates, with and without
// checkpoint-restart.
func BenchmarkFaultSched(b *testing.B) { benchExperiment(b, "faults") }

// BenchmarkInterferenceSched runs the bandwidth-heavy trace through the
// fluid reflow engine at every load factor, comparing each oblivious
// policy against its interference-aware variant.
func BenchmarkInterferenceSched(b *testing.B) { benchExperiment(b, "interference") }
