// Package pmemsched is a simulation-based reproduction of "Scheduling
// HPC Workflows with Intel Optane Persistent Memory" (Venkatesh, Mason,
// Fernando, Eisenhauer, Gavrilovska — IPDPS Workshops 2021).
//
// It models a dual-socket PMEM server (calibrated to first-generation
// Optane DC Persistent Memory), two PMEM storage stacks (the NOVA
// kernel filesystem and the NVStream userspace object store), and
// in-situ simulation+analytics workflows streaming versioned snapshots
// through PMEM. On top of the simulator it implements the paper's
// contribution: the four-way scheduling configuration space
// (Serial/Parallel execution × local-write/local-read placement), the
// workflow classifier, the Table II recommendation rules, and an
// auto-scheduler realizing the paper's stated future work.
//
// Quick start:
//
//	wf := pmemsched.GTCReadOnly(16)
//	out, err := pmemsched.AutoSchedule(wf, pmemsched.DefaultEnv(), true)
//	// out.Recommendation.Config — what Table II picked
//	// out.Regret — how far from the oracle's best it landed
//
// The cmd/wfsuite binary regenerates every table and figure of the
// paper's evaluation; cmd/recommend classifies and recommends for a
// workflow described on the command line; cmd/pmemchar prints the
// calibrated device curves; cmd/calibrate re-runs the calibration
// search.
package pmemsched

import (
	"io"

	"pmemsched/internal/core"
	"pmemsched/internal/experiments"
	"pmemsched/internal/numa"
	"pmemsched/internal/platform"
	"pmemsched/internal/pmem"
	"pmemsched/internal/sim"
	"pmemsched/internal/workflow"
	"pmemsched/internal/workloads"
)

// Scheduling configuration space (paper Table I).
type (
	// Config is one scheduling configuration: execution mode ×
	// placement.
	Config = core.Config
	// Mode is the Serial/Parallel execution dimension.
	Mode = core.Mode
	// Placement is the PMEM-locality dimension.
	Placement = core.Placement
)

// The four configurations of Table I.
var (
	SLocW = core.SLocW
	SLocR = core.SLocR
	PLocW = core.PLocW
	PLocR = core.PLocR
	// Configs lists all four in Table I order.
	Configs = core.Configs
)

// Execution-mode and placement constants.
const (
	Serial   = core.Serial
	Parallel = core.Parallel
	LocW     = core.LocW
	LocR     = core.LocR
)

// ParseConfig converts a label like "S-LocW" into a Config.
func ParseConfig(label string) (Config, error) { return core.ParseConfig(label) }

// Workflow modeling.
type (
	// Workflow is a coupled simulation+analytics pipeline.
	Workflow = workflow.Spec
	// Component describes one workflow component's iteration cycle and
	// snapshot composition.
	Component = workflow.ComponentSpec
	// ObjectSpec is one object population within a snapshot.
	ObjectSpec = workflow.ObjectSpec
	// AnalyticsKernel describes an analytics component's compute.
	AnalyticsKernel = workflow.AnalyticsKernel
)

// Couple builds a workflow from a simulation component and an
// analytics kernel reading its snapshots (the paper's 1:1 exchange).
func Couple(name string, sim Component, analytics AnalyticsKernel, ranks, iterations int) Workflow {
	return workflow.Couple(name, sim, analytics, ranks, iterations)
}

// ReadWorkflow decodes and validates a workflow spec from JSON (see
// internal/workflow's documented schema; cmd/wfrun -spec uses this).
func ReadWorkflow(r io.Reader) (Workflow, error) { return workflow.ReadSpec(r) }

// WriteWorkflow encodes a workflow spec as JSON.
func WriteWorkflow(w io.Writer, wf Workflow) error { return workflow.WriteSpec(w, wf) }

// Multi-tier memory (extension): part of a workflow's working set may
// live in socket DRAM instead of PMEM, under one of four policies. The
// zero TierSpec is pmem-only — exactly the paper's model.
type (
	// TierSpec selects a memory-tier policy and its parameters for a
	// workflow (set Workflow.Tier).
	TierSpec = workflow.TierSpec
	// TierPolicy is the tier policy enumeration.
	TierPolicy = workflow.TierPolicy
	// TierChoice is RecommendTier's output: the winning (policy,
	// configuration) pair next to the pmem-only baseline.
	TierChoice = core.TierChoice
	// TierResult pairs one tier candidate with its Table I results.
	TierResult = core.TierResult
)

// The four tier policies.
const (
	TierPMEMOnly        = workflow.TierPMEMOnly
	TierDRAMFirstSpill  = workflow.TierDRAMFirstSpill
	TierWriteStageDrain = workflow.TierWriteStageDrain
	TierHotPromote      = workflow.TierHotPromote
)

// ParseTierPolicy resolves a CLI/JSON tier policy name like
// "dram-first-spill".
func ParseTierPolicy(s string) (TierPolicy, error) { return workflow.ParseTierPolicy(s) }

// TierCandidates returns the tier policies RecommendTier explores, in
// search order (pmem-only first).
func TierCandidates() []TierSpec { return core.TierCandidates() }

// RecommendTier sweeps every tier candidate over the full Table I
// configuration space and returns the best combination; ties break
// toward pmem-only.
func RecommendTier(rt *Runner, wf Workflow) (TierChoice, error) { return core.RecommendTier(rt, wf) }

// ReadTierSpec decodes and validates a tier spec from JSON.
func ReadTierSpec(r io.Reader) (TierSpec, error) { return workflow.ReadTierSpec(r) }

// WriteTierSpec encodes a tier spec as JSON.
func WriteTierSpec(w io.Writer, t TierSpec) error { return workflow.WriteTierSpec(w, t) }

// General DAG workflows (beyond the paper's fixed pair): arbitrary
// acyclic graphs of stages connected by typed data edges, each edge
// lowering to the two-component kernel, with per-stage configuration
// tuning on the staged cost model.
type (
	// DAG is a general in-situ pipeline of named stages and data edges.
	DAG = workflow.DAGSpec
	// DAGStage is one stage: a component with its own rank count.
	DAGStage = workflow.StageSpec
	// DAGEdge is one typed data edge between stages.
	DAGEdge = workflow.EdgeSpec
	// StageConfig is one stage's tunable execution configuration.
	StageConfig = core.StageConfig
	// DAGAssignment assigns a StageConfig to every stage.
	DAGAssignment = core.DAGAssignment
	// DAGOptions parameterizes DAG prediction and tuning.
	DAGOptions = core.DAGOptions
	// DAGPrediction is the staged cost model's output.
	DAGPrediction = core.DAGPrediction
	// TunedDAG is TuneDAG's result.
	TunedDAG = core.TunedDAG
	// NamedEnv is a selectable software stack for DAG tuning.
	NamedEnv = core.NamedEnv
)

// ReadDAG decodes and validates a DAG workflow from JSON (see
// internal/workflow's documented schema; wfsched -dag uses this).
func ReadDAG(r io.Reader) (DAG, error) { return workflow.ReadDAGSpec(r) }

// WriteDAG encodes a DAG workflow as JSON.
func WriteDAG(w io.Writer, d DAG) error { return workflow.WriteDAGSpec(w, d) }

// WorkflowDAG lifts a two-component workflow into the equivalent
// two-stage DAG (the legacy bridge: compiling it back reproduces the
// original spec).
func WorkflowDAG(wf Workflow) DAG { return workflow.FromSpec(wf) }

// PredictDAG composes per-edge predicted runtimes along the DAG's
// critical path under one per-stage assignment.
func PredictDAG(rt *Runner, d DAG, asg DAGAssignment, opt DAGOptions) (DAGPrediction, error) {
	return core.PredictDAG(rt, d, asg, opt)
}

// TuneDAG searches per-stage rank × mode × placement × stack
// assignments under the options' budgets.
func TuneDAG(rt *Runner, d DAG, opt DAGOptions) (TunedDAG, error) {
	return core.TuneDAG(rt, d, opt)
}

// Execution environment and results.
type (
	// Env supplies the simulated platform and storage stack.
	Env = core.Env
	// Result is the measured outcome of one run.
	Result = core.Result
	// PhaseBreakdown is per-rank mean time by activity.
	PhaseBreakdown = core.PhaseBreakdown
)

// DefaultEnv returns the paper's evaluation environment: dual-socket
// 28-core Xeon, Gen-1 Optane per socket, NOVA as the transport.
func DefaultEnv() Env { return core.DefaultEnv() }

// Run executes a workflow under one configuration.
func Run(wf Workflow, cfg Config, env Env) (Result, error) { return core.Run(wf, cfg, env) }

// Tracer is the kernel stage-timeline collector (see RunWithTrace).
type Tracer = sim.Tracer

// RunWithTrace executes like Run and, when traced, also returns the
// kernel timeline (exportable to the Chrome trace viewer).
func RunWithTrace(wf Workflow, cfg Config, env Env, traced bool) (Result, *Tracer, error) {
	return core.RunWithTrace(wf, cfg, env, traced)
}

// RunAll executes a workflow under every configuration.
func RunAll(wf Workflow, env Env) ([]Result, error) { return core.RunAll(wf, env) }

// Concurrent memoizing run engine.
type (
	// Runner executes runs on a bounded worker pool with a
	// content-keyed result cache; identical runs are computed once.
	Runner = core.Runner
	// Job is one (workflow, deployment) execution for Runner.RunBatch.
	Job = core.Job
	// RunnerStats counts the engine's cache hits, misses and coalesced
	// in-flight joins.
	RunnerStats = core.RunnerStats
)

// NewRunner builds a run engine on env with the given worker count
// (<= 0 means GOMAXPROCS). All scheduling entry points are available
// as Runner methods — Run, RunAll, Oracle, AutoSchedule,
// ScheduleQueue, PlacementOracle — sharing one pool and one cache.
func NewRunner(env Env, workers int) *Runner { return core.NewRunner(env, workers) }

// ConfigJob builds the batch job for one Table I configuration.
func ConfigJob(wf Workflow, cfg Config) Job { return core.ConfigJob(wf, cfg) }

// Best returns the fastest result.
func Best(results []Result) Result { return core.Best(results) }

// Scheduling: classification, recommendation, oracle, auto-scheduling.
type (
	// Features is the Table II workflow characterization.
	Features = core.Features
	// Recommendation is the rule engine's output.
	Recommendation = core.Recommendation
	// RuleRow is one row of Table II.
	RuleRow = core.RuleRow
	// OracleDecision is the exhaustive-search answer.
	OracleDecision = core.OracleDecision
	// ScheduleOutcome is one end-to-end auto-scheduling decision.
	ScheduleOutcome = core.ScheduleOutcome
)

// TableII returns the paper's recommendation table as data.
func TableII() []RuleRow { return core.TableII() }

// Classify profiles a workflow's components standalone and buckets
// them into Table II's feature vocabulary.
func Classify(wf Workflow, env Env) (Features, error) { return core.Classify(wf, env) }

// Recommend applies the Table II rules to a feature tuple.
func Recommend(f Features) (Recommendation, error) { return core.Recommend(f) }

// RecommendWorkflow classifies and recommends in one step.
func RecommendWorkflow(wf Workflow, env Env) (Recommendation, error) {
	return core.RecommendWorkflow(wf, env)
}

// Oracle runs all four configurations and returns the best.
func Oracle(wf Workflow, env Env) (OracleDecision, error) { return core.Oracle(wf, env) }

// AutoSchedule profiles, classifies, recommends and executes; with
// verify it also reports the regret versus the oracle.
func AutoSchedule(wf Workflow, env Env, verify bool) (ScheduleOutcome, error) {
	return core.AutoSchedule(wf, env, verify)
}

// Batch scheduling.
type (
	// QueuePlan is a batch-scheduling outcome: per-workflow decisions,
	// makespan, and fixed-policy comparisons.
	QueuePlan = core.QueuePlan
	// QueueItem is one scheduled workflow within a plan.
	QueueItem = core.QueueItem
)

// ScheduleQueue plans and executes a queue of workflows, choosing each
// one's configuration from Table II, and compares the makespan against
// every fixed single-configuration policy.
func ScheduleQueue(queue []Workflow, env Env) (QueuePlan, error) {
	return core.ScheduleQueue(queue, env)
}

// Generalized placement (beyond the paper's two-socket Fig 2 space).
type (
	// Deployment places components and the PMEM channel on concrete
	// sockets.
	Deployment = core.Deployment
	// PlacementDecision is an exhaustive deployment-space search result.
	PlacementDecision = core.PlacementDecision
)

// RunDeployment executes a workflow under an explicit deployment.
func RunDeployment(wf Workflow, dep Deployment, env Env, traced bool) (Result, *Tracer, error) {
	return core.RunDeployment(wf, dep, env, traced)
}

// PlacementOracle searches every deployment of an N-socket machine.
func PlacementOracle(wf Workflow, env Env, sockets int) (PlacementDecision, error) {
	return core.PlacementOracle(wf, env, sockets)
}

// Workload suite (paper §IV).

// Suite returns all 18 evaluation workloads.
func Suite() []Workflow { return workloads.Suite() }

// MicroWorkflow builds the streaming microbenchmark (1 GiB per rank
// per iteration) with the given object size.
func MicroWorkflow(objBytes int64, ranks int) Workflow {
	return workloads.MicroWorkflow(objBytes, ranks)
}

// GTCReadOnly builds "GTC + Read only" (Fig 6).
func GTCReadOnly(ranks int) Workflow { return workloads.GTCReadOnly(ranks) }

// GTCMatrixMult builds "GTC + matrixmult" (Fig 7).
func GTCMatrixMult(ranks int) Workflow { return workloads.GTCMatrixMult(ranks) }

// MiniAMRReadOnly builds "miniAMR + Read only" (Fig 8).
func MiniAMRReadOnly(ranks int) Workflow { return workloads.MiniAMRReadOnly(ranks) }

// MiniAMRMatrixMult builds "miniAMR + matrixmult" (Fig 9).
func MiniAMRMatrixMult(ranks int) Workflow { return workloads.MiniAMRMatrixMult(ranks) }

// Microbenchmark object sizes (§IV-B).
const (
	MicroObjectSmall = workloads.MicroObjectSmall
	MicroObjectLarge = workloads.MicroObjectLarge
)

// Platform and device models (for custom environments and ablations).
type (
	// Machine is the simulated server.
	Machine = platform.Machine
	// DeviceModel is the PMEM calibration constant set.
	DeviceModel = pmem.Model
	// TopologyConfig parameterizes the NUMA layout.
	TopologyConfig = numa.Config
)

// Gen1Optane returns the calibrated first-generation Optane model.
func Gen1Optane() DeviceModel { return pmem.Gen1Optane() }

// TestbedConfig returns the paper's dual-socket topology.
func TestbedConfig() TopologyConfig { return numa.TestbedConfig() }

// NewMachine assembles a machine from a topology and device model.
func NewMachine(cfg TopologyConfig, model DeviceModel) *Machine {
	return platform.New(cfg, model)
}

// Experiments (one per paper table/figure). An Experiment's Run takes
// a *Runner; share one engine across experiments to reuse results.
type (
	// Experiment regenerates one paper artifact.
	Experiment = experiments.Experiment
	// ExperimentReport is an experiment's output and claim checks.
	ExperimentReport = experiments.Report
)

// Experiments returns every experiment in paper order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID looks an experiment up ("fig4", "tab2", ...).
func ExperimentByID(id string) (Experiment, error) { return experiments.ByID(id) }
