// Command pmemchar prints the calibrated Optane device
// characterization curves — the §II-B numbers the scheduling
// trade-offs rest on: bandwidth vs concurrency by operation kind and
// locality, the remote-write collapse at both pressure extremes, the
// read/write mixing penalty, and the idle latencies.
package main

import (
	"flag"
	"fmt"

	"pmemsched"
	"pmemsched/internal/pmem"
	"pmemsched/internal/units"
)

func main() {
	pressure := flag.Float64("pressure", 1.0, "sustained-write-pressure for the remote curves (0..1)")
	flag.Parse()

	m := pmemsched.Gen1Optane()
	fmt.Println("Gen-1 Optane DC PMEM calibration (interleaved, App-Direct)")
	fmt.Printf("  peak local read  %s (scales to %.0f ops)\n", units.FormatRate(m.ReadMax), m.ReadScaleOps)
	fmt.Printf("  peak local write %s (saturates at %.0f ops)\n", units.FormatRate(m.WriteMax), m.WriteScaleOps)
	fmt.Printf("  idle latency     read %s / write %s (remote %s / %s)\n",
		units.FormatSeconds(m.ReadLatencyLocal), units.FormatSeconds(m.WriteLatencyLocal),
		units.FormatSeconds(m.ReadLatencyRemote), units.FormatSeconds(m.WriteLatencyRemote))
	fmt.Printf("  interleave       %d DIMMs x %s chunks (%s stripes)\n\n",
		m.DIMMs, units.FormatBytes(m.ChunkBytes), units.FormatBytes(m.StripeBytes))

	fmt.Printf("aggregate bandwidth vs concurrency (pressure %.2f):\n", *pressure)
	fmt.Printf("%6s  %12s  %12s  %12s  %12s  %10s\n",
		"ops", "local read", "remote read", "local write", "remote write", "rw penalty")
	for _, n := range []int{1, 2, 4, 8, 12, 16, 17, 20, 24} {
		w := float64(n)
		lr := m.Caps(pmem.Load{LocalReads: w, RawReads: n}, *pressure).Read
		rr := m.Caps(pmem.Load{RemoteReads: w, RawReads: n}, *pressure).Read
		lw := m.Caps(pmem.Load{LocalWrites: w, RawWrites: n}, *pressure).Write
		rw := m.Caps(pmem.Load{RemoteWrites: w, RawWrites: n}, *pressure).Write
		fmt.Printf("%6d  %12s  %12s  %12s  %12s  %9.2fx\n",
			n, units.FormatRate(lr), units.FormatRate(rr),
			units.FormatRate(lw), units.FormatRate(rw),
			m.RemoteWritePenalty(w, *pressure))
	}

	fmt.Println("\nread/write mixing (equal effective mix, pressure-scaled):")
	fmt.Printf("%12s  %14s  %14s\n", "raw streams", "read cap", "write cap")
	for _, n := range []int{8, 16, 24, 32, 48} {
		half := float64(n) / 2
		l := pmem.Load{LocalReads: half, LocalWrites: half, RawReads: n / 2, RawWrites: n / 2}
		c := m.Caps(l, *pressure)
		fmt.Printf("%12d  %14s  %14s\n", n, units.FormatRate(c.Read), units.FormatRate(c.Write))
	}

	fmt.Println("\nsmall-access (sub-stripe) DIMM contention, pure writes:")
	fmt.Printf("%12s  %14s  %14s\n", "raw streams", "large objects", "small objects")
	for _, n := range []int{4, 8, 16, 24} {
		w := float64(n)
		big := m.Caps(pmem.Load{LocalWrites: w, RawWrites: n}, 0).Write
		small := m.Caps(pmem.Load{LocalWrites: w, SmallWrites: w, RawWrites: n, RawSmall: n}, 0).Write
		fmt.Printf("%12d  %14s  %14s\n", n, units.FormatRate(big), units.FormatRate(small))
	}
}
