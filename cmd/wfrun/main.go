// Command wfrun executes one suite workflow under one (or every)
// scheduling configuration and prints the measured runtime with the
// split writer/reader breakdown the paper plots.
//
// Usage:
//
//	wfrun -workflow gtc+readonly -ranks 16                 # all configs
//	wfrun -workflow micro-2k -ranks 24 -config S-LocR      # one config
//	wfrun -list                                            # list workflows
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"pmemsched"
	"pmemsched/internal/units"
)

var factories = map[string]func(int) pmemsched.Workflow{
	"micro-64mb": func(r int) pmemsched.Workflow {
		return pmemsched.MicroWorkflow(pmemsched.MicroObjectLarge, r)
	},
	"micro-2k": func(r int) pmemsched.Workflow {
		return pmemsched.MicroWorkflow(pmemsched.MicroObjectSmall, r)
	},
	"gtc+readonly":       pmemsched.GTCReadOnly,
	"gtc+matrixmult":     pmemsched.GTCMatrixMult,
	"miniamr+readonly":   pmemsched.MiniAMRReadOnly,
	"miniamr+matrixmult": pmemsched.MiniAMRMatrixMult,
}

func main() {
	name := flag.String("workflow", "", "workflow name (see -list)")
	specPath := flag.String("spec", "", "JSON workflow spec file (alternative to -workflow)")
	ranks := flag.Int("ranks", 16, "ranks per component (8, 16 or 24 in the paper)")
	config := flag.String("config", "", "configuration label (default: all four)")
	list := flag.Bool("list", false, "list workflow names and exit")
	tracePath := flag.String("trace", "", "write a Chrome trace-viewer timeline of the (single-config) run to this file")
	flag.Parse()

	if *list {
		names := make([]string, 0, len(factories))
		for n := range factories {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}
	var wf pmemsched.Workflow
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wfrun:", err)
			os.Exit(2)
		}
		wf, err = pmemsched.ReadWorkflow(f)
		//pmemlint:ignore errflow read-only file; decode errors are checked, a close error cannot lose data
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "wfrun:", err)
			os.Exit(2)
		}
	} else {
		mk, ok := factories[*name]
		if !ok {
			fmt.Fprintf(os.Stderr, "wfrun: unknown workflow %q (use -list or -spec)\n", *name)
			os.Exit(2)
		}
		wf = mk(*ranks)
	}
	env := pmemsched.DefaultEnv()

	var configs []pmemsched.Config
	if *config == "" {
		configs = pmemsched.Configs
	} else {
		c, err := pmemsched.ParseConfig(*config)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wfrun:", err)
			os.Exit(2)
		}
		configs = []pmemsched.Config{c}
	}

	if *tracePath != "" && len(configs) != 1 {
		fmt.Fprintln(os.Stderr, "wfrun: -trace requires a single -config")
		os.Exit(2)
	}
	fmt.Printf("workflow %s (%s total through PMEM)\n", wf, units.FormatBytes(wf.TotalBytes()))
	var results []pmemsched.Result
	for _, cfg := range configs {
		res, tracer, err := pmemsched.RunWithTrace(wf, cfg, env, *tracePath != "")
		if err != nil {
			fmt.Fprintln(os.Stderr, "wfrun:", err)
			os.Exit(1)
		}
		if tracer != nil {
			f, err := os.Create(*tracePath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wfrun:", err)
				os.Exit(1)
			}
			if err := tracer.WriteChromeTrace(f); err != nil {
				fmt.Fprintln(os.Stderr, "wfrun:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "wfrun:", err)
				os.Exit(1)
			}
			fmt.Printf("timeline written to %s (%d events)\n", *tracePath, len(tracer.Events))
		}
		results = append(results, res)
		if cfg.Mode == pmemsched.Serial {
			fmt.Printf("  %-7s total %9s  (writer %s + reader %s)\n",
				cfg.Label(), units.FormatSeconds(res.TotalSeconds),
				units.FormatSeconds(res.WriterSplit), units.FormatSeconds(res.ReaderSplit))
		} else {
			fmt.Printf("  %-7s total %9s  (writers end %s)\n",
				cfg.Label(), units.FormatSeconds(res.TotalSeconds),
				units.FormatSeconds(res.WriterEnd))
		}
		fmt.Printf("          writer: compute %s, software %s, device %s\n",
			units.FormatSeconds(res.Writer.Compute), units.FormatSeconds(res.Writer.SW),
			units.FormatSeconds(res.Writer.IO))
		fmt.Printf("          reader: compute %s, software %s, device %s, waiting %s\n",
			units.FormatSeconds(res.Reader.Compute), units.FormatSeconds(res.Reader.SW),
			units.FormatSeconds(res.Reader.IO), units.FormatSeconds(res.Reader.Wait+res.Reader.Gate))
	}
	if len(results) > 1 {
		best := pmemsched.Best(results)
		fmt.Printf("best: %s (%s)\n", best.Config.Label(), units.FormatSeconds(best.TotalSeconds))
	}
}
