package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunUsageErrors drives run() through every flag-validation path
// and checks each rejects with exit code 2 before any simulation work,
// with a message naming the offending flag.
func TestRunUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // stderr substring
	}{
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"positional args", []string{"simulate"}, "unexpected arguments"},
		{"unknown format", []string{"-format", "xml"}, `unknown format "xml"`},
		{"unknown stack", []string{"-stack", "zfs"}, "unknown stack"},
		{"unknown config", []string{"-config", "X-LocW"}, "configuration"},
		{"unknown policy", []string{"-policy", "sjf"}, "unknown"},
		{"negative jobs", []string{"-jobs", "-5"}, "-jobs must be non-negative"},
		{"negative jobs streaming", []string{"-jobs", "-5", "-stream"}, "-jobs must be non-negative"},
		{"retries without faults", []string{"-retries", "3"}, "need -faults"},
		{"checkpoint without faults", []string{"-checkpoint", "300"}, "need -faults"},
		{"dump-trace with stream", []string{"-stream", "-dump-trace", "x.json"}, "drop -stream"},
		{"missing trace file", []string{"-trace", "/nonexistent/trace.json"}, "no such file"},
		{"missing fault schedule", []string{"-fault-schedule", "/nonexistent/outages.json"}, "no such file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit code %d, want 2 (stderr %q)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.want)
			}
			if stdout.Len() != 0 {
				t.Errorf("usage error leaked output to stdout: %q", stdout.String())
			}
		})
	}
}

// TestRunSmallTraceJSON runs a tiny synthetic trace end to end and
// checks the JSON report parses and covers every job.
func TestRunSmallTraceJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-jobs", "2", "-format", "json"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr %q", code, stderr.String())
	}
	var report struct {
		Jobs []json.RawMessage `json:"jobs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, stdout.String())
	}
	if len(report.Jobs) != 2 {
		t.Errorf("report covers %d jobs, want 2", len(report.Jobs))
	}
}

// TestRunDumpTraceRoundTrip dumps a synthetic trace and feeds the file
// back through -trace; the reports must be byte-identical.
func TestRunDumpTraceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var first, second, stderr bytes.Buffer
	if code := run([]string{"-jobs", "3", "-seed", "7", "-format", "csv", "-dump-trace", path}, &first, &stderr); code != 0 {
		t.Fatalf("dump run exit code %d, stderr %q", code, stderr.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("-dump-trace wrote nothing: %v", err)
	}
	if code := run([]string{"-trace", path, "-format", "csv"}, &second, &stderr); code != 0 {
		t.Fatalf("replay run exit code %d, stderr %q", code, stderr.String())
	}
	if first.String() != second.String() {
		t.Errorf("replay diverged from the original run:\n--- original\n%s--- replay\n%s", first.String(), second.String())
	}
}

// TestSelectTraceRejectsNegativeJobs is the regression test for the
// silent fall-through bug: -jobs -5 used to select the bundled suite
// trace instead of erroring.
func TestSelectTraceRejectsNegativeJobs(t *testing.T) {
	if _, err := selectTrace("", "", -5, 60, 1); err == nil {
		t.Fatal("selectTrace accepted a negative job count")
	} else if !strings.Contains(err.Error(), "-jobs") {
		t.Errorf("error %q does not mention -jobs", err)
	}
}

// TestSelectTraceDefaults covers the two generator paths: 0 jobs is the
// 18-workload suite trace, a positive count is a synthetic trace of
// exactly that size.
func TestSelectTraceDefaults(t *testing.T) {
	tr, err := selectTrace("", "", 0, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 18 {
		t.Errorf("suite trace has %d jobs, want 18", len(tr.Jobs))
	}
	tr, err = selectTrace("", "", 5, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 5 {
		t.Errorf("synthetic trace has %d jobs, want 5", len(tr.Jobs))
	}
}
