package main

import (
	"strings"
	"testing"
)

// TestSelectTraceRejectsNegativeJobs is the regression test for the
// silent fall-through bug: -jobs -5 used to select the bundled suite
// trace instead of erroring.
func TestSelectTraceRejectsNegativeJobs(t *testing.T) {
	if _, err := selectTrace("", -5, 60, 1); err == nil {
		t.Fatal("selectTrace accepted a negative job count")
	} else if !strings.Contains(err.Error(), "-jobs") {
		t.Errorf("error %q does not mention -jobs", err)
	}
}

// TestSelectTraceDefaults covers the two generator paths: 0 jobs is the
// 18-workload suite trace, a positive count is a synthetic trace of
// exactly that size.
func TestSelectTraceDefaults(t *testing.T) {
	tr, err := selectTrace("", 0, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 18 {
		t.Errorf("suite trace has %d jobs, want 18", len(tr.Jobs))
	}
	tr, err = selectTrace("", 5, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 5 {
		t.Errorf("synthetic trace has %d jobs, want 5", len(tr.Jobs))
	}
}
