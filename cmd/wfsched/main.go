// Command wfsched runs the online multi-node cluster scheduler over a
// job arrival trace and reports per-job queueing metrics (wait,
// turnaround, bounded slowdown) and per-node utilization.
//
// Usage:
//
//	wfsched                              # bundled 18-workload suite trace, pmem-aware, 2 nodes
//	wfsched -policy easy -config S-LocW  # EASY backfill under one fixed configuration
//	wfsched -jobs 8 -seed 3              # 8-job synthetic trace sampled from the suite
//	wfsched -trace trace.json -nodes 4   # a custom JSON trace (see internal/cluster.ReadTrace)
//	wfsched -format json                 # machine-readable report (byte-identical per seed)
//	wfsched -interference                # model cross-job PMEM contention on shared nodes
//	wfsched -interference -policy easy-i # ...and place jobs to avoid bandwidth collisions
//	wfsched -faults -mtbf 3600           # seeded random node failures, jobs retried with backoff
//	wfsched -faults -checkpoint 300      # ...with checkpoint-restart every 300 standalone-seconds
//	wfsched -fault-schedule outages.json # explicit outage schedule (see internal/cluster.ReadOutages)
//	wfsched -dump-trace trace.json       # write the generated trace for reuse
//
// Exit codes: 0 success, 1 runtime failure (simulation or output), 2
// usage error (bad flags or flag combinations, rejected before any
// simulation runs).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pmemsched"
	"pmemsched/internal/cli"
	"pmemsched/internal/cluster"
	"pmemsched/internal/core"
	"pmemsched/internal/stack"
	"pmemsched/internal/stack/nova"
	"pmemsched/internal/stack/nvstream"
	"pmemsched/internal/workflow"
	"pmemsched/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wfsched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tracePath := fs.String("trace", "", "JSON job trace (default: a synthetic trace, see -jobs)")
	dagPath := fs.String("dag", "", "DAG workflow JSON spec; the trace submits -jobs copies of it (conflicts with -trace, needs -jobs >= 1)")
	jobs := fs.Int("jobs", 0, "synthetic trace size; 0 = the bundled 18-workload suite trace (one of each)")
	interarrival := fs.Float64("interarrival", 60, "synthetic mean inter-arrival time in seconds (Poisson arrivals)")
	nodes := fs.Int("nodes", 2, "cluster size")
	policyName := fs.String("policy", "pmem-aware", "scheduling policy: fcfs, easy, pmem-aware, easy-i or pmem-aware-i")
	configName := fs.String("config", "S-LocW", "fixed site-wide configuration for fcfs/easy (S-LocW, S-LocR, P-LocW, P-LocR)")
	seed := fs.Int64("seed", 1, "synthetic trace seed (same seed = byte-identical trace and report)")
	parallel := fs.Int("parallel", 0, "run-engine worker pool size (0 = GOMAXPROCS)")
	format := fs.String("format", "text", "output format: text, csv or json")
	stackName := fs.String("stack", "nova", "storage stack: nova or nvstream")
	dumpTrace := fs.String("dump-trace", "", "also write the job trace as JSON to this path")
	interference := fs.Bool("interference", false, "model cross-job PMEM bandwidth contention on shared nodes (Optane budgets)")
	faults := fs.Bool("faults", false, "model node failures: random MTBF/MTTR outages seeded from -seed (see -mtbf, -mttr)")
	mtbf := fs.Float64("mtbf", 3600, "mean time between failures per node, seconds (with -faults)")
	mttr := fs.Float64("mttr", 120, "mean repair time per node, seconds (with -faults)")
	faultSchedule := fs.String("fault-schedule", "", "explicit JSON outage schedule; implies -faults and overrides -mtbf/-mttr")
	retries := fs.Int("retries", 0, "max attempts per job under faults; 0 = the default policy (4)")
	backoff := fs.Float64("backoff", -1, "base requeue backoff in seconds, doubling per kill; negative = default (10)")
	checkpoint := fs.Float64("checkpoint", 0, "checkpoint-restart interval in standalone-seconds; 0 = restart from scratch")
	tier := fs.String("tier", "", "memory-tier policy applied to every job: pmem-only, dram-first-spill, write-stage-drain or hot-promote")
	nodeDRAM := fs.Float64("node-dram", 0, "per-node DRAM capacity in GiB schedulable by tiered jobs (0 = DRAM unmodeled)")
	stream := fs.Bool("stream", false, "stream the trace through the engine (constant memory; -trace files must already be sorted by arrival)")
	summaryOnly := fs.Bool("summary-only", false, "aggregate on the fly and emit only the summary (constant memory; fleet-scale runs)")
	dedupSamples := fs.Bool("dedup-samples", false, "drop consecutive identical utilization samples from the series")
	incrementalReflow := fs.Bool("incremental-reflow", false, "socket-local incremental interference reflow (bounded per-event work; last-ulp fp drift vs the exact reflow)")
	linearScan := fs.Bool("linear-scan", false, "disable the free-capacity index; restore the pre-fleet all-nodes scans (A/B benchmarking)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		cli.Sayf(stderr, "wfsched: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	// Validate everything derivable from flags alone before any
	// simulation runs: a typo'd -format used to surface only after
	// minutes of simulated work.
	switch *format {
	case "text", "csv", "json":
	default:
		cli.Sayf(stderr, "wfsched: unknown format %q (want text, csv or json)\n", *format)
		return 2
	}
	if *dagPath != "" {
		if *tracePath != "" {
			cli.Sayln(stderr, "wfsched: -dag and -trace are mutually exclusive")
			return 2
		}
		if *jobs < 1 {
			cli.Sayf(stderr, "wfsched: -dag needs -jobs >= 1 (got %d)\n", *jobs)
			return 2
		}
	}
	var tierSpec workflow.TierSpec
	if *tier != "" {
		if *dagPath != "" {
			cli.Sayln(stderr, "wfsched: -tier conflicts with -dag (declare per-stage tiers in the DAG spec)")
			return 2
		}
		pol, err := workflow.ParseTierPolicy(*tier)
		if err != nil {
			cli.Sayln(stderr, "wfsched:", err)
			return 2
		}
		tierSpec = workflow.TierSpec{Policy: pol}
	}
	if *nodeDRAM < 0 {
		cli.Sayf(stderr, "wfsched: -node-dram must be non-negative, got %g\n", *nodeDRAM)
		return 2
	}
	env, err := envFor(*stackName)
	if err != nil {
		cli.Sayln(stderr, "wfsched:", err)
		return 2
	}
	fixed, err := core.ParseConfig(*configName)
	if err != nil {
		cli.Sayln(stderr, "wfsched:", err)
		return 2
	}
	policy, err := cluster.ParsePolicy(*policyName, fixed)
	if err != nil {
		cli.Sayln(stderr, "wfsched:", err)
		return 2
	}

	rt := core.NewRunner(env, *parallel)
	opt := cluster.Options{
		Nodes:      *nodes,
		Policy:     policy,
		Estimator:  cluster.NewEstimator(rt),
		LinearScan: *linearScan,
		Fleet: cluster.FleetOptions{
			IncrementalReflow: *incrementalReflow,
			DedupSamples:      *dedupSamples,
			SummaryOnly:       *summaryOnly,
		},
	}
	opt.DRAMBytesPerNode = *nodeDRAM * 1024 * 1024 * 1024
	if *interference {
		if tierSpec.Enabled() {
			// Tiered jobs also contend for socket DRAM bandwidth.
			opt.Interference = cluster.TieredInterference()
		} else {
			opt.Interference = cluster.DefaultInterference()
		}
	}
	if err := faultOptions(&opt, *faults, *faultSchedule, *mtbf, *mttr, *seed, *retries, *backoff, *checkpoint); err != nil {
		cli.Sayln(stderr, "wfsched:", err)
		return 2
	}

	var metrics *cluster.Metrics
	if *stream {
		// Streaming keeps the whole trace out of memory, which is the
		// point — so there is no materialized trace to dump.
		if *dumpTrace != "" {
			cli.Sayln(stderr, "wfsched: -dump-trace needs a materialized trace; drop -stream")
			return 2
		}
		src, done, err := selectSource(*tracePath, *dagPath, *jobs, *interarrival, *seed)
		if err != nil {
			cli.Sayln(stderr, "wfsched:", err)
			return 2
		}
		if tierSpec.Enabled() {
			src = tieredSource{src: src, tier: tierSpec}
		}
		metrics, err = cluster.SimulateStream(src, opt)
		if cerr := done(); err == nil {
			err = cerr
		}
		if err != nil {
			cli.Sayln(stderr, "wfsched:", err)
			return 1
		}
	} else {
		tr, err := selectTrace(*tracePath, *dagPath, *jobs, *interarrival, *seed)
		if err != nil {
			cli.Sayln(stderr, "wfsched:", err)
			return 2
		}
		if tierSpec.Enabled() {
			for i := range tr.Jobs {
				tr.Jobs[i].Workflow.Tier = tierSpec
			}
		}
		if *dumpTrace != "" {
			if err := dumpTraceFile(*dumpTrace, tr); err != nil {
				cli.Sayln(stderr, "wfsched:", err)
				return 1
			}
		}
		metrics, err = cluster.Simulate(tr, opt)
		if err != nil {
			cli.Sayln(stderr, "wfsched:", err)
			return 1
		}
	}

	switch *format {
	case "text":
		err = metrics.Render(stdout)
	case "csv":
		err = metrics.WriteCSV(stdout)
	case "json":
		err = metrics.WriteJSON(stdout)
	}
	if err != nil {
		cli.Sayln(stderr, "wfsched:", err)
		return 1
	}
	return 0
}

// tieredSource applies the site-wide -tier policy to every streamed
// job's workflow.
type tieredSource struct {
	src  cluster.TraceSource
	tier workflow.TierSpec
}

func (t tieredSource) Next() (cluster.Job, bool, error) {
	j, ok, err := t.src.Next()
	if ok {
		j.Workflow.Tier = t.tier
	}
	return j, ok, err
}

// dumpTraceFile writes the materialized trace as JSON.
func dumpTraceFile(path string, tr cluster.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := cluster.WriteTrace(f, tr); err != nil {
		//pmemlint:ignore errflow the write error is being reported; a close error on top cannot change the verdict
		f.Close()
		return err
	}
	return f.Close()
}

// loadDAG reads a DAG workflow spec file.
func loadDAG(path string) (workflow.DAGSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return workflow.DAGSpec{}, err
	}
	//pmemlint:ignore errflow read-only file; decode errors are checked, a close error cannot lose data
	defer f.Close()
	return workflow.ReadDAGSpec(f)
}

// selectTrace resolves the job trace the flags ask for: a JSON file, a
// DAG spec repeated -jobs times, a synthetic trace of the given size,
// or (jobs == 0) the bundled suite trace. A negative -jobs is an
// explicit error — it used to fall through to the suite-trace default
// silently.
func selectTrace(tracePath, dagPath string, jobs int, interarrival float64, seed int64) (cluster.Trace, error) {
	switch {
	case dagPath != "":
		d, err := loadDAG(dagPath)
		if err != nil {
			return cluster.Trace{}, err
		}
		return cluster.SyntheticDAG(d, cluster.SyntheticConfig{
			Jobs:                    jobs,
			MeanInterarrivalSeconds: interarrival,
			Seed:                    seed,
		})
	case tracePath != "":
		f, err := os.Open(tracePath)
		if err != nil {
			return cluster.Trace{}, err
		}
		//pmemlint:ignore errflow read-only file; decode errors are checked, a close error cannot lose data
		defer f.Close()
		return cluster.ReadTrace(f)
	case jobs < 0:
		return cluster.Trace{}, fmt.Errorf("-jobs must be non-negative (got %d); 0 selects the bundled suite trace", jobs)
	case jobs > 0:
		return cluster.Synthetic(workloads.Suite(), cluster.SyntheticConfig{
			Jobs:                    jobs,
			MeanInterarrivalSeconds: interarrival,
			Seed:                    seed,
		})
	default:
		return cluster.SuiteTrace(seed, interarrival)
	}
}

// selectSource is selectTrace for -stream: the same flag semantics,
// but the trace flows through the engine one arrival at a time — a
// trace file is decoded incrementally (it must already be sorted by
// arrival, which WriteTrace/-dump-trace files are) and a synthetic
// trace is drawn job by job. The returned func releases the source's
// file handle, if any.
func selectSource(tracePath, dagPath string, jobs int, interarrival float64, seed int64) (cluster.TraceSource, func() error, error) {
	noop := func() error { return nil }
	switch {
	case dagPath != "":
		// A DAG trace is -jobs copies of one spec — always small, so
		// materializing it keeps one synthesis path.
		tr, err := selectTrace("", dagPath, jobs, interarrival, seed)
		if err != nil {
			return nil, noop, err
		}
		return tr.Source(), noop, nil
	case tracePath != "":
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, noop, err
		}
		return cluster.StreamTrace(f), f.Close, nil
	case jobs < 0:
		return nil, noop, fmt.Errorf("-jobs must be non-negative (got %d); 0 selects the bundled suite trace", jobs)
	case jobs > 0:
		src, err := cluster.SyntheticSource(workloads.Suite(), cluster.SyntheticConfig{
			Jobs:                    jobs,
			MeanInterarrivalSeconds: interarrival,
			Seed:                    seed,
		})
		return src, noop, err
	default:
		tr, err := cluster.SuiteTrace(seed, interarrival)
		if err != nil {
			return nil, noop, err
		}
		return tr.Source(), noop, nil
	}
}

// faultOptions fills opt.Faults and opt.Retry from the fault flag set.
// An explicit schedule implies -faults; the random model reuses the
// trace seed so one -seed pins the whole run.
func faultOptions(opt *cluster.Options, faults bool, schedule string, mtbf, mttr float64, seed int64, retries int, backoff, checkpoint float64) error {
	if schedule != "" {
		f, err := os.Open(schedule)
		if err != nil {
			return err
		}
		//pmemlint:ignore errflow read-only file; decode errors are checked, a close error cannot lose data
		defer f.Close()
		outages, err := cluster.ReadOutages(f)
		if err != nil {
			return err
		}
		opt.Faults = cluster.ScheduledFaults(outages...)
	} else if faults {
		opt.Faults = cluster.RandomFaults(mtbf, mttr, seed)
	} else {
		if retries != 0 || backoff >= 0 || checkpoint != 0 {
			return fmt.Errorf("-retries/-backoff/-checkpoint need -faults or -fault-schedule")
		}
		return nil
	}
	retry := cluster.DefaultRetry()
	if retries != 0 {
		retry.MaxAttempts = retries
	}
	if backoff >= 0 {
		retry.BackoffSeconds = backoff
	}
	retry.CheckpointIntervalSeconds = checkpoint
	opt.Retry = retry
	return nil
}

func envFor(name string) (core.Env, error) {
	env := pmemsched.DefaultEnv()
	switch name {
	case "nova":
		env.NewStack = func() stack.Instance { return nova.Default() }
	case "nvstream":
		env.NewStack = func() stack.Instance { return nvstream.Default() }
	default:
		return env, fmt.Errorf("unknown stack %q (want nova or nvstream)", name)
	}
	return env, nil
}
