// Command wfsuite regenerates the paper's evaluation: every table and
// figure, rendered as text tables and ASCII bar charts, each followed
// by a paper-vs-measured claim check.
//
// Usage:
//
//	wfsuite                 # run every experiment
//	wfsuite -only fig4,tab2 # run a subset
//	wfsuite -list           # list experiment IDs
//	wfsuite -stack nvstream # run on NVStream instead of NOVA
//	wfsuite -parallel 8     # size of the run engine's worker pool
//	wfsuite -stats          # print run-engine cache stats to stderr
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pmemsched"
	"pmemsched/internal/core"
	"pmemsched/internal/stack"
	"pmemsched/internal/stack/nova"
	"pmemsched/internal/stack/nvstream"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	stackName := flag.String("stack", "nova", "storage stack: nova or nvstream")
	format := flag.String("format", "text", "output format: text, csv or json")
	parallel := flag.Int("parallel", 0, "run-engine worker pool size (0 = GOMAXPROCS)")
	stats := flag.Bool("stats", false, "print run-engine cache statistics to stderr")
	flag.Parse()

	if *list {
		for _, e := range pmemsched.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	env, err := envFor(*stackName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfsuite:", err)
		os.Exit(2)
	}

	var selected []pmemsched.Experiment
	if *only == "" {
		selected = pmemsched.Experiments()
	} else {
		for _, id := range strings.Split(*only, ",") {
			e, err := pmemsched.ExperimentByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, "wfsuite:", err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	// One engine for the whole suite: experiments share a worker pool
	// and a result cache, so e.g. fig4-10, tab2 and gen2 reuse each
	// other's suite runs instead of recomputing them.
	rt := pmemsched.NewRunner(env, *parallel)

	okTotal, checkTotal := 0, 0
	for _, e := range selected {
		rep, err := e.Run(rt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wfsuite: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		var rerr error
		switch *format {
		case "text":
			rerr = rep.Render(os.Stdout)
		case "csv":
			rerr = rep.WriteCSV(os.Stdout)
		case "json":
			rerr = rep.WriteJSON(os.Stdout)
		default:
			rerr = fmt.Errorf("unknown format %q", *format)
		}
		if rerr != nil {
			fmt.Fprintln(os.Stderr, "wfsuite:", rerr)
			os.Exit(1)
		}
		ok, total := rep.Matched()
		okTotal += ok
		checkTotal += total
	}
	fmt.Printf("== summary: %d/%d paper claims matched ==\n", okTotal, checkTotal)
	// Two known deviations are documented in EXPERIMENTS.md (the
	// miniAMR+MatrixMult placement rows); the pinned outcomes are
	// enforced by the calibration acceptance tests instead of an exit
	// code here.
	if *stats {
		s := rt.Stats()
		fmt.Fprintf(os.Stderr, "wfsuite: run engine: %d runs (%d cache hits, %d misses, %d in-flight joins, %.1f%% hit rate), %d cached entries, %d workers\n",
			s.Runs(), s.Hits, s.Misses, s.Inflight, s.HitRate()*100, s.Entries, rt.Workers())
	}
}

func envFor(name string) (core.Env, error) {
	env := pmemsched.DefaultEnv()
	switch name {
	case "nova":
		env.NewStack = func() stack.Instance { return nova.Default() }
	case "nvstream":
		env.NewStack = func() stack.Instance { return nvstream.Default() }
	default:
		return env, fmt.Errorf("unknown stack %q (want nova or nvstream)", name)
	}
	return env, nil
}
