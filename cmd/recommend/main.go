// Command recommend classifies a workflow (standalone profiling runs
// on the simulated testbed, exactly the paper's §IV-A measurement) and
// applies the Table II rules, optionally verifying the choice against
// the exhaustive oracle.
//
// Usage:
//
//	recommend -workflow miniamr+matrixmult -ranks 8
//	recommend -workflow gtc+readonly -ranks 24 -verify
//	recommend -spec custom.json -verify
//	recommend -suite -verify       # the full 18-workload Table II check
//
// Exit codes: 0 success, 1 runtime failure, 2 usage error (bad flags
// or flag combinations, rejected before any simulation runs).
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"pmemsched"
	"pmemsched/internal/cli"
	"pmemsched/internal/stack"
	"pmemsched/internal/stack/nvstream"
	"pmemsched/internal/units"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("recommend", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("workflow", "", "workflow name (as in wfrun -list)")
	specPath := fs.String("spec", "", "JSON workflow spec file (alternative to -workflow)")
	dagPath := fs.String("dag", "", "DAG workflow JSON spec file: tune per-stage configurations instead of applying Table II")
	ranks := fs.Int("ranks", 16, "ranks per component")
	verify := fs.Bool("verify", false, "run the oracle and report regret")
	suite := fs.Bool("suite", false, "run the whole 18-workload suite")
	parallel := fs.Int("parallel", 0, "run-engine worker pool size (0 = GOMAXPROCS)")
	tier := fs.String("tier", "", "memory-tier policy: pmem-only, dram-first-spill, write-stage-drain, hot-promote, or auto (search all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		cli.Sayf(stderr, "recommend: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	// The four selection modes are mutually exclusive; catch every
	// conflicting combination before touching the engine.
	switch {
	case *dagPath != "" && (*suite || *name != "" || *specPath != ""):
		cli.Sayln(stderr, "recommend: -dag conflicts with -workflow, -spec and -suite")
		return 2
	case *suite && (*name != "" || *specPath != ""):
		cli.Sayln(stderr, "recommend: -suite conflicts with -workflow and -spec")
		return 2
	case *name != "" && *specPath != "":
		cli.Sayln(stderr, "recommend: -workflow and -spec are alternatives; pick one")
		return 2
	case !*suite && *name == "" && *specPath == "" && *dagPath == "":
		cli.Sayln(stderr, "recommend: nothing selected; use -workflow, -spec, -dag or -suite")
		return 2
	}
	if *ranks <= 0 {
		cli.Sayf(stderr, "recommend: -ranks must be positive, got %d\n", *ranks)
		return 2
	}
	// Tier selection rides on the single-workflow path only: the suite
	// and DAG paths have their own configuration spaces.
	var tierSpec pmemsched.TierSpec
	tierAuto := false
	if *tier != "" {
		if *suite || *dagPath != "" {
			cli.Sayln(stderr, "recommend: -tier conflicts with -suite and -dag")
			return 2
		}
		if *tier == "auto" {
			tierAuto = true
		} else {
			pol, err := pmemsched.ParseTierPolicy(*tier)
			if err != nil {
				cli.Sayln(stderr, "recommend:", err)
				return 2
			}
			tierSpec = pmemsched.TierSpec{Policy: pol}
		}
	}

	rt := pmemsched.NewRunner(pmemsched.DefaultEnv(), *parallel)
	if *suite {
		return runSuite(rt, *verify, stdout, stderr)
	}
	if *dagPath != "" {
		f, err := os.Open(*dagPath)
		if err != nil {
			cli.Sayln(stderr, "recommend:", err)
			return 2
		}
		d, err := pmemsched.ReadDAG(f)
		//pmemlint:ignore errflow read-only file; decode errors are checked, a close error cannot lose data
		f.Close()
		if err != nil {
			cli.Sayln(stderr, "recommend:", err)
			return 2
		}
		return reportDAG(d, rt, stdout, stderr)
	}

	var wf pmemsched.Workflow
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			cli.Sayln(stderr, "recommend:", err)
			return 2
		}
		wf, err = pmemsched.ReadWorkflow(f)
		//pmemlint:ignore errflow read-only file; decode errors are checked, a close error cannot lose data
		f.Close()
		if err != nil {
			cli.Sayln(stderr, "recommend:", err)
			return 2
		}
	} else {
		var err error
		wf, err = workflowByName(*name, *ranks)
		if err != nil {
			cli.Sayln(stderr, "recommend:", err)
			return 2
		}
	}

	if tierAuto {
		return reportTier(wf, rt, stdout, stderr)
	}
	wf.Tier = tierSpec
	return report(wf, rt, *verify, stdout, stderr)
}

// reportTier sweeps every tier policy over the Table I space and
// prints the per-policy best results next to the recommendation.
func reportTier(wf pmemsched.Workflow, rt *pmemsched.Runner, stdout, stderr io.Writer) int {
	choice, err := pmemsched.RecommendTier(rt, wf)
	if err != nil {
		cli.Sayln(stderr, "recommend:", err)
		return 1
	}
	cli.Sayf(stdout, "workflow:  %s\n", wf)
	for _, tr := range choice.PerTier {
		cli.Sayf(stdout, "  %-18s best %-7s %s\n", tr.Tier.Label(),
			tr.Best.Config.Label(), units.FormatSeconds(tr.Best.TotalSeconds))
	}
	cli.Sayf(stdout, "recommend: %s under %s\n", choice.Tier.Label(), choice.Best.Config.Label())
	if gain := choice.Improvement(); gain > 0 {
		cli.Sayf(stdout, "gain:      %s over the best pmem-only configuration\n", units.FormatSeconds(gain))
	} else {
		cli.Sayln(stdout, "gain:      none (pmem-only remains best)")
	}
	return 0
}

// workflowByName resolves a catalog workload name.
func workflowByName(name string, ranks int) (pmemsched.Workflow, error) {
	switch name {
	case "micro-64mb":
		return pmemsched.MicroWorkflow(pmemsched.MicroObjectLarge, ranks), nil
	case "micro-2k":
		return pmemsched.MicroWorkflow(pmemsched.MicroObjectSmall, ranks), nil
	case "gtc+readonly":
		return pmemsched.GTCReadOnly(ranks), nil
	case "gtc+matrixmult":
		return pmemsched.GTCMatrixMult(ranks), nil
	case "miniamr+readonly":
		return pmemsched.MiniAMRReadOnly(ranks), nil
	case "miniamr+matrixmult":
		return pmemsched.MiniAMRMatrixMult(ranks), nil
	}
	return pmemsched.Workflow{}, fmt.Errorf("unknown workflow %q (see wfrun -list)", name)
}

// fmtRegret renders a regret fraction; NaN means the regret is
// undefined (unmeasured configuration or zero-work oracle) and must
// never read as 0%.
func fmtRegret(r float64) string {
	if math.IsNaN(r) {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", r*100)
}

func report(wf pmemsched.Workflow, rt *pmemsched.Runner, verify bool, stdout, stderr io.Writer) int {
	out, err := rt.AutoSchedule(wf, verify)
	if err != nil {
		cli.Sayln(stderr, "recommend:", err)
		return 1
	}
	rec := out.Recommendation
	cli.Sayf(stdout, "workflow:  %s\n", wf)
	cli.Sayf(stdout, "features:  %s\n", rec.Features)
	cli.Sayf(stdout, "rule:      Table II row %d (%s)\n", rec.Row.ID, rec.Row.Illustrative)
	cli.Sayf(stdout, "recommend: %s\n", rec.Config.Label())
	cli.Sayf(stdout, "runtime:   %s\n", units.FormatSeconds(out.Chosen.TotalSeconds))
	if verify {
		cli.Sayf(stdout, "oracle:    %s (%s)\n", out.Oracle.Best.Config.Label(),
			units.FormatSeconds(out.Oracle.Best.TotalSeconds))
		cli.Sayf(stdout, "regret:    %s\n", fmtRegret(out.Regret))
	}
	return 0
}

// reportDAG tunes per-stage configurations for a DAG workflow and
// prints the assignment next to the best uniform configuration. The
// tuner may also move a stage's in-edges onto the NVStream stack (the
// base engine runs NOVA, the CLIs' default).
func reportDAG(d pmemsched.DAG, rt *pmemsched.Runner, stdout, stderr io.Writer) int {
	nv := pmemsched.DefaultEnv()
	nv.NewStack = func() stack.Instance { return nvstream.Default() }
	nv.Tag = "nvstream"
	tuned, err := pmemsched.TuneDAG(rt, d, pmemsched.DAGOptions{
		Stacks: []pmemsched.NamedEnv{{Name: "nvstream", Env: nv}},
	})
	if err != nil {
		cli.Sayln(stderr, "recommend:", err)
		return 1
	}
	cli.Sayf(stdout, "dag:       %s\n", d)
	cli.Sayf(stdout, "evaluated: %d assignments\n", tuned.Evaluations)
	cli.Sayf(stdout, "%-20s %6s  %-7s %s\n", "stage", "ranks", "config", "stack")
	for i, st := range d.Stages {
		sc := tuned.Assignment.Stages[i]
		ranks := st.Ranks
		if sc.Ranks > 0 {
			ranks = sc.Ranks
		}
		stackName := sc.Stack
		if stackName == "" {
			stackName = "nova"
		}
		cfg := pmemsched.Config{Mode: sc.Mode, Placement: sc.Place}
		cli.Sayf(stdout, "%-20s %6d  %-7s %s\n", st.Name, ranks, cfg.Label(), stackName)
	}
	cli.Sayf(stdout, "tuned:     makespan %s, cost %.1f core-s\n",
		units.FormatSeconds(tuned.Prediction.MakespanSeconds), tuned.Prediction.CostCoreSeconds)
	ucfg := pmemsched.Config{Mode: tuned.Uniform.Mode, Placement: tuned.Uniform.Place}
	cli.Sayf(stdout, "uniform:   %s — makespan %s, cost %.1f core-s\n",
		ucfg.Label(), units.FormatSeconds(tuned.UniformPrediction.MakespanSeconds), tuned.UniformPrediction.CostCoreSeconds)
	return 0
}

func runSuite(rt *pmemsched.Runner, verify bool, stdout, stderr io.Writer) int {
	matched, total := 0, 0
	for _, wf := range pmemsched.Suite() {
		out, err := rt.AutoSchedule(wf, verify)
		if err != nil {
			cli.Sayln(stderr, "recommend:", err)
			return 1
		}
		total++
		line := fmt.Sprintf("%-28s rule #%-2d -> %-7s", wf.Name,
			out.Recommendation.Row.ID, out.Recommendation.Config.Label())
		if verify {
			ok := out.Recommendation.Config == out.Oracle.Best.Config
			if ok {
				matched++
			}
			if math.IsNaN(out.Regret) {
				line += fmt.Sprintf("  oracle %-7s regret   n/a", out.Oracle.Best.Config.Label())
			} else {
				line += fmt.Sprintf("  oracle %-7s regret %5.1f%%", out.Oracle.Best.Config.Label(), out.Regret*100)
			}
		}
		cli.Sayln(stdout, line)
	}
	if verify {
		cli.Sayf(stdout, "matched oracle: %d/%d\n", matched, total)
	}
	return 0
}
