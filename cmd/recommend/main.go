// Command recommend classifies a workflow (standalone profiling runs
// on the simulated testbed, exactly the paper's §IV-A measurement) and
// applies the Table II rules, optionally verifying the choice against
// the exhaustive oracle.
//
// Usage:
//
//	recommend -workflow miniamr+matrixmult -ranks 8
//	recommend -workflow gtc+readonly -ranks 24 -verify
//	recommend -suite -verify       # the full 18-workload Table II check
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"pmemsched"
	"pmemsched/internal/units"
)

func main() {
	name := flag.String("workflow", "", "workflow name (as in wfrun -list)")
	specPath := flag.String("spec", "", "JSON workflow spec file (alternative to -workflow)")
	ranks := flag.Int("ranks", 16, "ranks per component")
	verify := flag.Bool("verify", false, "run the oracle and report regret")
	suite := flag.Bool("suite", false, "run the whole 18-workload suite")
	parallel := flag.Int("parallel", 0, "run-engine worker pool size (0 = GOMAXPROCS)")
	flag.Parse()

	rt := pmemsched.NewRunner(pmemsched.DefaultEnv(), *parallel)
	if *suite {
		runSuite(rt, *verify)
		return
	}

	var wf pmemsched.Workflow
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "recommend:", err)
			os.Exit(2)
		}
		wf, err = pmemsched.ReadWorkflow(f)
		//pmemlint:ignore errflow read-only file; decode errors are checked, a close error cannot lose data
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "recommend:", err)
			os.Exit(2)
		}
		report(wf, rt, *verify)
		return
	}
	switch *name {
	case "micro-64mb":
		wf = pmemsched.MicroWorkflow(pmemsched.MicroObjectLarge, *ranks)
	case "micro-2k":
		wf = pmemsched.MicroWorkflow(pmemsched.MicroObjectSmall, *ranks)
	case "gtc+readonly":
		wf = pmemsched.GTCReadOnly(*ranks)
	case "gtc+matrixmult":
		wf = pmemsched.GTCMatrixMult(*ranks)
	case "miniamr+readonly":
		wf = pmemsched.MiniAMRReadOnly(*ranks)
	case "miniamr+matrixmult":
		wf = pmemsched.MiniAMRMatrixMult(*ranks)
	default:
		fmt.Fprintf(os.Stderr, "recommend: unknown workflow %q\n", *name)
		os.Exit(2)
	}

	report(wf, rt, *verify)
}

// fmtRegret renders a regret fraction; NaN means the regret is
// undefined (unmeasured configuration or zero-work oracle) and must
// never read as 0%.
func fmtRegret(r float64) string {
	if math.IsNaN(r) {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", r*100)
}

func report(wf pmemsched.Workflow, rt *pmemsched.Runner, verify bool) {
	out, err := rt.AutoSchedule(wf, verify)
	if err != nil {
		fmt.Fprintln(os.Stderr, "recommend:", err)
		os.Exit(1)
	}
	rec := out.Recommendation
	fmt.Printf("workflow:  %s\n", wf)
	fmt.Printf("features:  %s\n", rec.Features)
	fmt.Printf("rule:      Table II row %d (%s)\n", rec.Row.ID, rec.Row.Illustrative)
	fmt.Printf("recommend: %s\n", rec.Config.Label())
	fmt.Printf("runtime:   %s\n", units.FormatSeconds(out.Chosen.TotalSeconds))
	if verify {
		fmt.Printf("oracle:    %s (%s)\n", out.Oracle.Best.Config.Label(),
			units.FormatSeconds(out.Oracle.Best.TotalSeconds))
		fmt.Printf("regret:    %s\n", fmtRegret(out.Regret))
	}
}

func runSuite(rt *pmemsched.Runner, verify bool) {
	matched, total := 0, 0
	for _, wf := range pmemsched.Suite() {
		out, err := rt.AutoSchedule(wf, verify)
		if err != nil {
			fmt.Fprintln(os.Stderr, "recommend:", err)
			os.Exit(1)
		}
		total++
		line := fmt.Sprintf("%-28s rule #%-2d -> %-7s", wf.Name,
			out.Recommendation.Row.ID, out.Recommendation.Config.Label())
		if verify {
			ok := out.Recommendation.Config == out.Oracle.Best.Config
			if ok {
				matched++
			}
			if math.IsNaN(out.Regret) {
				line += fmt.Sprintf("  oracle %-7s regret   n/a", out.Oracle.Best.Config.Label())
			} else {
				line += fmt.Sprintf("  oracle %-7s regret %5.1f%%", out.Oracle.Best.Config.Label(), out.Regret*100)
			}
		}
		fmt.Println(line)
	}
	if verify {
		fmt.Printf("matched oracle: %d/%d\n", matched, total)
	}
}
