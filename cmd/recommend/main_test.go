package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pmemsched"
)

// TestRunUsageErrors checks every invalid flag combination is rejected
// with exit code 2 before any simulation runs.
func TestRunUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // stderr substring
	}{
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"positional args", []string{"-workflow", "micro-2k", "classify"}, "unexpected arguments"},
		{"nothing selected", nil, "nothing selected"},
		{"workflow and spec", []string{"-workflow", "micro-2k", "-spec", "x.json"}, "pick one"},
		{"suite and workflow", []string{"-suite", "-workflow", "micro-2k"}, "-suite conflicts"},
		{"suite and spec", []string{"-suite", "-spec", "x.json"}, "-suite conflicts"},
		{"zero ranks", []string{"-workflow", "micro-2k", "-ranks", "0"}, "-ranks must be positive"},
		{"negative ranks", []string{"-workflow", "micro-2k", "-ranks", "-4"}, "-ranks must be positive"},
		{"unknown workflow", []string{"-workflow", "hpl"}, `unknown workflow "hpl"`},
		{"missing spec file", []string{"-spec", "/nonexistent/spec.json"}, "no such file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit code %d, want 2 (stderr %q)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.want)
			}
			if stdout.Len() != 0 {
				t.Errorf("usage error leaked output to stdout: %q", stdout.String())
			}
		})
	}
}

// TestRunBadSpecFile checks a malformed spec file is a usage error,
// not a crash.
func TestRunBadSpecFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-spec", path}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code %d, want 2 (stderr %q)", code, stderr.String())
	}
}

// TestRunNamedWorkflow classifies one catalog workload end to end and
// checks the report shape.
func TestRunNamedWorkflow(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-workflow", "micro-2k", "-ranks", "4"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr %q", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"workflow:", "features:", "rule:", "recommend:", "runtime:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestRunSpecMatchesNamed feeds the same workload through -spec and
// -workflow; the reports must agree.
func TestRunSpecMatchesNamed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pmemsched.WriteWorkflow(f, pmemsched.GTCReadOnly(4)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var byName, bySpec, stderr bytes.Buffer
	if code := run([]string{"-workflow", "gtc+readonly", "-ranks", "4"}, &byName, &stderr); code != 0 {
		t.Fatalf("named run exit code %d, stderr %q", code, stderr.String())
	}
	if code := run([]string{"-spec", path}, &bySpec, &stderr); code != 0 {
		t.Fatalf("spec run exit code %d, stderr %q", code, stderr.String())
	}
	if byName.String() != bySpec.String() {
		t.Errorf("-spec diverged from -workflow:\n--- named\n%s--- spec\n%s", byName.String(), bySpec.String())
	}
}
