// fleetbench measures the cluster engine's scheduling cost at fleet
// scale and writes the result as a BENCH_fleet.json document — the
// repo's performance trajectory for the fleet-scale engine work.
//
// The workload is the bundled 18-workflow suite drawn as a seeded
// synthetic Poisson stream (cluster.SyntheticSource), run through
// cluster.SimulateStream in summary-only mode so a million-job trace
// needs constant memory. With -compare the same stream is rerun under
// Options.LinearScan (the pre-index engine: all-nodes scans and
// per-pass deep copies) and the report asserts the two engines produce
// identical summaries — the cross-engine equivalence check — plus the
// indexed-over-linear speedup.
//
// With -baseline the run gates against a committed BENCH_fleet.json:
// it fails (exit 1) when the fresh per-event cost regresses more than
// -tolerance times the baseline's, which is what CI's bench smoke job
// runs on every push.
//
// Wall-clock timing lives here and not in internal/cluster because the
// simulator proper is deterministic by contract (pmemlint bans
// time.Now there); the engine exports event and pass counters and this
// command divides them by wall time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"pmemsched"
	"pmemsched/internal/cluster"
	"pmemsched/internal/core"
	"pmemsched/internal/stack"
	"pmemsched/internal/stack/nova"
	"pmemsched/internal/stack/nvstream"
	"pmemsched/internal/workloads"
)

// benchDoc is the BENCH_fleet.json schema, version
// "pmemsched/bench-fleet/v1". Fields under "indexed"/"linear" are
// machine-dependent wall-clock measurements; everything else is
// deterministic. Future PRs append runs by regenerating the file, and
// the CI gate reads indexed.ns_per_event.
type benchDoc struct {
	Schema string      `json:"schema"`
	Config benchConfig `json:"config"`
	// Indexed is the production engine (bucketed free-capacity index,
	// copy-on-write snapshots, streaming trace, summary-only metrics).
	Indexed benchRun `json:"indexed"`
	// Linear is the pre-index engine on the same stream (present only
	// with -compare), and Speedup is linear over indexed wall time.
	Linear  *benchRun `json:"linear,omitempty"`
	Speedup float64   `json:"speedup,omitempty"`
	// Summary is the simulation outcome, identical across both engines
	// (asserted when -compare is set).
	Summary cluster.Summary `json:"summary"`
}

type benchConfig struct {
	Nodes                   int     `json:"nodes"`
	Jobs                    int     `json:"jobs"`
	MeanInterarrivalSeconds float64 `json:"mean_interarrival_seconds"`
	Seed                    int64   `json:"seed"`
	Policy                  string  `json:"policy"`
	CoresPerSocket          int     `json:"cores_per_socket"`
	Stack                   string  `json:"stack"`
}

type benchRun struct {
	WallSeconds float64 `json:"wall_seconds"`
	Events      int     `json:"events"`
	Passes      int     `json:"passes"`
	NsPerEvent  float64 `json:"ns_per_event"`
}

func main() {
	nodes := flag.Int("nodes", 1000, "cluster size")
	jobs := flag.Int("jobs", 1000000, "synthetic trace length")
	interarrival := flag.Float64("interarrival", 0.027, "mean inter-arrival in seconds (Poisson; 0.027 loads the default 1k-node cluster to ~60%)")
	seed := flag.Int64("seed", 1, "trace seed")
	policyName := flag.String("policy", "easy", "scheduling policy: fcfs, easy, pmem-aware, easy-i or pmem-aware-i")
	configName := flag.String("config", "S-LocW", "fixed site-wide configuration for fcfs/easy")
	stackName := flag.String("stack", "nova", "storage stack: nova or nvstream")
	parallel := flag.Int("parallel", 0, "run-engine worker pool size (0 = GOMAXPROCS)")
	compare := flag.Bool("compare", false, "also run the linear-scan engine on the same stream and record the speedup")
	out := flag.String("out", "BENCH_fleet.json", "output path")
	baseline := flag.String("baseline", "", "committed BENCH_fleet.json to gate against (CI)")
	tolerance := flag.Float64("tolerance", 2.0, "max allowed indexed ns/event regression factor vs the baseline")
	flag.Parse()

	env := pmemsched.DefaultEnv()
	switch *stackName {
	case "nova":
		env.NewStack = func() stack.Instance { return nova.Default() }
	case "nvstream":
		env.NewStack = func() stack.Instance { return nvstream.Default() }
	default:
		fatal(fmt.Errorf("unknown stack %q (want nova or nvstream)", *stackName))
	}
	fixed, err := core.ParseConfig(*configName)
	if err != nil {
		fatal(err)
	}
	policy, err := cluster.ParsePolicy(*policyName, fixed)
	if err != nil {
		fatal(err)
	}
	opt := cluster.Options{
		Nodes:     *nodes,
		Policy:    policy,
		Estimator: cluster.NewEstimator(core.NewRunner(env, *parallel)),
		Fleet:     cluster.FleetOptions{SummaryOnly: true, DedupSamples: true},
	}
	cfg := cluster.SyntheticConfig{Jobs: *jobs, MeanInterarrivalSeconds: *interarrival, Seed: *seed}

	indexed, sum, err := run(opt, cfg)
	if err != nil {
		fatal(err)
	}
	doc := benchDoc{
		Schema: "pmemsched/bench-fleet/v1",
		Config: benchConfig{
			Nodes: *nodes, Jobs: *jobs, MeanInterarrivalSeconds: *interarrival,
			Seed: *seed, Policy: policy.Name(), CoresPerSocket: sum.CoresPerSocket, Stack: *stackName,
		},
		Indexed: indexed,
		Summary: sum,
	}
	fmt.Fprintf(os.Stderr, "indexed: %d jobs on %d nodes in %.2fs (%.0f ns/event, %d events, %d passes)\n",
		*jobs, *nodes, indexed.WallSeconds, indexed.NsPerEvent, indexed.Events, indexed.Passes)

	if *compare {
		linOpt := opt
		linOpt.LinearScan = true
		linear, linSum, err := run(linOpt, cfg)
		if err != nil {
			fatal(err)
		}
		a, _ := json.Marshal(sum)
		b, _ := json.Marshal(linSum)
		if string(a) != string(b) {
			fatal(fmt.Errorf("indexed and linear-scan engines disagree on the summary:\n  indexed: %s\n  linear:  %s", a, b))
		}
		doc.Linear = &linear
		doc.Speedup = linear.WallSeconds / indexed.WallSeconds
		fmt.Fprintf(os.Stderr, "linear:  same stream in %.2fs (%.0f ns/event) — speedup %.1fx, summaries identical\n",
			linear.WallSeconds, linear.NsPerEvent, doc.Speedup)
	}

	if *baseline != "" {
		if err := gate(*baseline, indexed, *tolerance); err != nil {
			fatal(err)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

// run executes one simulation of the seeded stream and times it.
func run(opt cluster.Options, cfg cluster.SyntheticConfig) (benchRun, cluster.Summary, error) {
	src, err := cluster.SyntheticSource(workloads.Suite(), cfg)
	if err != nil {
		return benchRun{}, cluster.Summary{}, err
	}
	start := time.Now()
	m, err := cluster.SimulateStream(src, opt)
	if err != nil {
		return benchRun{}, cluster.Summary{}, err
	}
	wall := time.Since(start)
	r := benchRun{
		WallSeconds: wall.Seconds(),
		Events:      m.Events,
		Passes:      m.Passes,
	}
	if m.Events > 0 {
		r.NsPerEvent = float64(wall.Nanoseconds()) / float64(m.Events)
	}
	return r, m.Summary(), nil
}

// gate compares the fresh indexed per-event cost against a committed
// baseline and fails on a regression beyond the tolerance factor.
func gate(path string, fresh benchRun, tolerance float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base benchDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	if base.Indexed.NsPerEvent <= 0 {
		return fmt.Errorf("baseline %s has no indexed ns/event measurement", path)
	}
	limit := base.Indexed.NsPerEvent * tolerance
	if fresh.NsPerEvent > limit {
		return fmt.Errorf("per-event scheduling cost regressed: %.0f ns/event vs baseline %.0f (limit %.0fx = %.0f)",
			fresh.NsPerEvent, base.Indexed.NsPerEvent, tolerance, limit)
	}
	fmt.Fprintf(os.Stderr, "gate:    %.0f ns/event within %.1fx of baseline %.0f\n",
		fresh.NsPerEvent, tolerance, base.Indexed.NsPerEvent)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleetbench:", err)
	os.Exit(1)
}
