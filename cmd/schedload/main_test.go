package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"positional args", []string{"go"}, "unexpected arguments"},
		{"zero clients", []string{"-clients", "0"}, "-clients must be"},
		{"zero duration", []string{"-duration", "0s"}, "-duration > 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit code %d, want 2 (stderr %q)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.want)
			}
		})
	}
}

// TestSelfHostedRun drives a miniature self-hosted bench end to end
// and sanity-checks the written document.
func TestSelfHostedRun(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-clients", "2", "-duration", "200ms", "-out", out}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("reading bench doc: %v", err)
	}
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("decoding bench doc: %v\n%s", err, data)
	}
	if doc.Schema != "pmemsched/bench-schedd/v1" {
		t.Errorf("schema %q", doc.Schema)
	}
	if doc.Warm.Requests == 0 || doc.Warm.ThroughputRPS <= 0 {
		t.Errorf("empty timed phase: %+v", doc.Warm)
	}
	if doc.Warm.Errors != 0 {
		t.Errorf("%d errors during the timed phase", doc.Warm.Errors)
	}
	if doc.Warm.LatencyMs.P99 < doc.Warm.LatencyMs.P50 {
		t.Errorf("p99 %.3f below p50 %.3f", doc.Warm.LatencyMs.P99, doc.Warm.LatencyMs.P50)
	}
	if doc.Daemon.Cache.HitRate <= 0 {
		t.Errorf("warm phase reported hit rate %v", doc.Daemon.Cache.HitRate)
	}
	if !strings.Contains(stdout.String(), "req/s") {
		t.Errorf("summary line missing from stdout: %q", stdout.String())
	}
}

// TestMinRPSGate checks the throughput gate actually gates.
func TestMinRPSGate(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// No machine serves 10^12 req/s; the gate must trip.
	code := run([]string{"-clients", "2", "-duration", "100ms", "-min-rps", "1e12"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "below the -min-rps") {
		t.Errorf("stderr %q does not explain the gate", stderr.String())
	}
}
