// schedload is the load generator for wfschedd: it hammers the
// recommend endpoint from many concurrent clients and writes the
// measured serving capacity as a BENCH_schedd.json document — the
// repo's performance trajectory for the scheduler-as-a-service work.
//
// By default it self-hosts: it builds an in-process daemon on a
// loopback port and drives it over real HTTP, so one command measures
// the full serving path (routing, admission, batching, JSON) without
// needing a separately launched server. Point -addr at a running
// wfschedd to load-test that instead.
//
// The run has two phases. A warmup issues every distinct request once,
// filling the decision cache; the timed phase then measures the
// warm-cache regime — the daemon's steady state, where every request
// is a cache hit and throughput is bounded by serving overhead, not
// simulation. The report carries client-side latency percentiles and
// the daemon's own /metrics counters (cache hit rate, batching shape,
// shed count).
//
// Usage:
//
//	schedload -quick                      # small run, for CI
//	schedload -clients 64 -duration 10s   # heavier local run
//	schedload -addr 127.0.0.1:8080        # against an external daemon
//	schedload -min-rps 5000               # gate: exit 1 below this throughput
//
// Wall-clock timing lives here and not in internal/schedd's tests
// because throughput is machine-dependent; the committed
// BENCH_schedd.json records one machine's trajectory.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"pmemsched/internal/cli"
	"sort"
	"strings"
	"sync"
	"time"

	"pmemsched/internal/core"
	"pmemsched/internal/schedd"
)

// benchDoc is the BENCH_schedd.json schema, version
// "pmemsched/bench-schedd/v1". The warm section is machine-dependent
// wall-clock measurement; the daemon section echoes /metrics counters
// at the end of the run.
type benchDoc struct {
	Schema string      `json:"schema"`
	Config benchConfig `json:"config"`
	// Warm is the timed warm-cache phase: every request a repeat of a
	// warmed decision.
	Warm benchPhase `json:"warm"`
	// Daemon is the server's own view, read from /metrics after the
	// timed phase.
	Daemon daemonStats `json:"daemon"`
}

type benchConfig struct {
	Clients          int     `json:"clients"`
	DurationSeconds  float64 `json:"duration_seconds"`
	DistinctRequests int     `json:"distinct_requests"`
	Workers          int     `json:"workers"`
	SelfHosted       bool    `json:"self_hosted"`
}

type benchPhase struct {
	Requests      int         `json:"requests"`
	Errors        int         `json:"errors"`
	WallSeconds   float64     `json:"wall_seconds"`
	ThroughputRPS float64     `json:"throughput_rps"`
	LatencyMs     latencyDist `json:"latency_ms"`
}

type latencyDist struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// daemonStats is the slice of wfschedd's /metrics the bench records.
// Field names match the daemon's wire shape so the decode is direct.
type daemonStats struct {
	Cache struct {
		Hits          uint64  `json:"hits"`
		Misses        uint64  `json:"misses"`
		InflightJoins uint64  `json:"inflight_joins"`
		Entries       uint64  `json:"entries"`
		HitRate       float64 `json:"hit_rate"`
	} `json:"cache"`
	Batch struct {
		Batches  uint64  `json:"batches"`
		Requests uint64  `json:"requests"`
		Merged   uint64  `json:"merged"`
		MeanSize float64 `json:"mean_size"`
	} `json:"batch"`
	Admission struct {
		MaxInflight int    `json:"max_inflight"`
		Shed        uint64 `json:"shed"`
	} `json:"admission"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("schedload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "daemon address (host:port); empty self-hosts an in-process daemon")
	clients := fs.Int("clients", 32, "concurrent client goroutines")
	duration := fs.Duration("duration", 5*time.Second, "timed phase length")
	workers := fs.Int("workers", 0, "self-hosted daemon's worker pool size (0 = GOMAXPROCS)")
	quick := fs.Bool("quick", false, "small run for CI: 16 clients, 1s")
	out := fs.String("out", "", "write the bench document to this path (default: stdout)")
	minRPS := fs.Float64("min-rps", 0, "fail (exit 1) when warm throughput is below this")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		cli.Sayf(stderr, "schedload: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	if *quick {
		*clients = 16
		*duration = time.Second
	}
	if *clients < 1 || *duration <= 0 {
		cli.Sayln(stderr, "schedload: -clients must be >= 1 and -duration > 0")
		return 2
	}

	target := *addr
	var shutdown func() error
	if target == "" {
		var err error
		target, shutdown, err = selfHost(*workers, *clients)
		if err != nil {
			cli.Sayln(stderr, "schedload:", err)
			return 1
		}
		defer func() {
			if err := shutdown(); err != nil {
				cli.Sayln(stderr, "schedload: daemon shutdown:", err)
			}
		}()
	}
	base := "http://" + target

	// One distinct request per catalog workload and rank point: enough
	// variety to exercise dedup and cache lookup, small enough that the
	// warm phase is all hits.
	var bodies []string
	for _, name := range []string{
		"micro-64mb", "micro-2k", "gtc+readonly", "gtc+matrixmult",
		"miniamr+readonly", "miniamr+matrixmult",
	} {
		for _, ranks := range []int{4, 16} {
			bodies = append(bodies, fmt.Sprintf(`{"name":%q,"ranks":%d}`, name, ranks))
		}
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *clients * 2,
		MaxIdleConnsPerHost: *clients * 2,
	}}

	// Warmup: every distinct decision once, serially, so the timed
	// phase measures the warm-cache serving path.
	for _, body := range bodies {
		if err := post(client, base+"/v1/recommend", body); err != nil {
			cli.Sayln(stderr, "schedload: warmup:", err)
			return 1
		}
	}

	phase, err := hammer(client, base+"/v1/recommend", bodies, *clients, *duration)
	if err != nil {
		cli.Sayln(stderr, "schedload:", err)
		return 1
	}

	var daemon daemonStats
	if err := getJSON(client, base+"/metrics", &daemon); err != nil {
		cli.Sayln(stderr, "schedload: reading /metrics:", err)
		return 1
	}

	doc := benchDoc{
		Schema: "pmemsched/bench-schedd/v1",
		Config: benchConfig{
			Clients:          *clients,
			DurationSeconds:  duration.Seconds(),
			DistinctRequests: len(bodies),
			Workers:          *workers,
			SelfHosted:       *addr == "",
		},
		Warm:   phase,
		Daemon: daemon,
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		cli.Sayln(stderr, "schedload:", err)
		return 1
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			cli.Sayln(stderr, "schedload:", err)
			return 1
		}
		cli.Sayf(stdout, "schedload: %d req in %.2fs = %.0f req/s (p99 %.2fms, hit rate %.1f%%) -> %s\n",
			phase.Requests, phase.WallSeconds, phase.ThroughputRPS,
			phase.LatencyMs.P99, daemon.Cache.HitRate*100, *out)
	} else {
		if _, err := stdout.Write(data); err != nil {
			cli.Sayln(stderr, "schedload:", err)
			return 1
		}
	}

	if phase.Errors > 0 {
		cli.Sayf(stderr, "schedload: %d requests failed during the timed phase\n", phase.Errors)
		return 1
	}
	if *minRPS > 0 && phase.ThroughputRPS < *minRPS {
		cli.Sayf(stderr, "schedload: throughput %.0f req/s below the -min-rps %.0f gate\n",
			phase.ThroughputRPS, *minRPS)
		return 1
	}
	return 0
}

// selfHost builds an in-process daemon on a loopback port and returns
// its address and a shutdown func. The admission gate is sized to the
// client count — the bench measures serving capacity, not the gate
// (shedding under an undersized gate is TestAdmissionShed territory);
// an operator sizes a real deployment's gate with wfschedd
// -max-inflight the same way.
func selfHost(workers, clients int) (string, func() error, error) {
	srv, err := schedd.New(schedd.Config{
		Runner:      core.NewRunner(core.DefaultEnv(), workers),
		MaxInflight: 2 * clients,
	})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	served := make(chan error, 1)
	go func() { served <- httpSrv.Serve(ln) }()
	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := httpSrv.Shutdown(ctx)
		srv.Close()
		if serr := <-served; err == nil && !errors.Is(serr, http.ErrServerClosed) {
			err = serr
		}
		return err
	}
	return ln.Addr().String(), shutdown, nil
}

// hammer runs the timed phase: clients goroutines looping over the
// request corpus until the deadline, each recording its own latencies.
func hammer(client *http.Client, url string, bodies []string, clients int, d time.Duration) (benchPhase, error) {
	type clientResult struct {
		latencies []float64 // milliseconds
		errs      int
	}
	results := make([]clientResult, clients)
	deadline := time.Now().Add(d)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := &results[c]
			for i := 0; time.Now().Before(deadline); i++ {
				body := bodies[(c+i)%len(bodies)]
				t0 := time.Now()
				err := post(client, url, body)
				r.latencies = append(r.latencies, float64(time.Since(t0).Nanoseconds())/1e6)
				if err != nil {
					r.errs++
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	var all []float64
	errs := 0
	for _, r := range results {
		all = append(all, r.latencies...)
		errs += r.errs
	}
	if len(all) == 0 {
		return benchPhase{}, fmt.Errorf("timed phase issued no requests")
	}
	sort.Float64s(all)
	sum := 0.0
	for _, v := range all {
		sum += v
	}
	phase := benchPhase{
		Requests:      len(all),
		Errors:        errs,
		WallSeconds:   wall,
		ThroughputRPS: float64(len(all)) / wall,
		LatencyMs: latencyDist{
			Mean: sum / float64(len(all)),
			P50:  quantile(all, 0.50),
			P90:  quantile(all, 0.90),
			P99:  quantile(all, 0.99),
			Max:  all[len(all)-1],
		},
	}
	return phase, nil
}

// quantile reads the q-quantile from a sorted slice (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// post issues one JSON request and drains the response; any non-200
// status is an error.
func post(client *http.Client, url, body string) error {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	data, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: status %d: %s", url, resp.StatusCode, data)
	}
	return nil
}

// getJSON fetches and decodes one JSON document.
func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	err = json.NewDecoder(resp.Body).Decode(v)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	return err
}
