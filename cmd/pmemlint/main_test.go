package main

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pmemsched/internal/analysis"
)

func diag(file string, line, col int, analyzer, msg string) analysis.Diagnostic {
	return analysis.Diagnostic{
		Pos:      token.Position{Filename: file, Line: line, Column: col},
		Message:  msg,
		Analyzer: analyzer,
	}
}

func TestToJSONDiagsRelativizesAndSorts(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("repo")
	in := []analysis.Diagnostic{
		diag(filepath.Join(root, "b", "b.go"), 3, 1, "errflow", "zz"),
		diag(filepath.Join(root, "a", "a.go"), 9, 2, "floatdet", "m1"),
		diag(filepath.Join(root, "a", "a.go"), 2, 5, "mapiter", "m2"),
		diag(filepath.Join(string(filepath.Separator), "elsewhere", "c.go"), 1, 1, "errflow", "outside root"),
	}
	got := toJSONDiags(in, root)
	want := []jsonDiag{
		{File: "/elsewhere/c.go", Line: 1, Col: 1, Analyzer: "errflow", Message: "outside root"},
		{File: "a/a.go", Line: 2, Col: 5, Analyzer: "mapiter", Message: "m2"},
		{File: "a/a.go", Line: 9, Col: 2, Analyzer: "floatdet", Message: "m1"},
		{File: "b/b.go", Line: 3, Col: 1, Analyzer: "errflow", Message: "zz"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("toJSONDiags = %+v, want %+v", got, want)
	}
}

func TestSubtractBaselineIgnoresLineNumbers(t *testing.T) {
	diags := []jsonDiag{
		{File: "a.go", Line: 10, Col: 1, Analyzer: "errflow", Message: "discarded"},
		{File: "a.go", Line: 20, Col: 1, Analyzer: "mapiter", Message: "unordered"},
		{File: "b.go", Line: 5, Col: 1, Analyzer: "errflow", Message: "discarded"},
	}
	base := []jsonDiag{
		// Recorded at a different line: must still suppress, because a
		// committed baseline cannot track unrelated edits.
		{File: "a.go", Line: 3, Col: 9, Analyzer: "errflow", Message: "discarded"},
	}
	got := subtractBaseline(diags, base)
	want := []jsonDiag{
		{File: "a.go", Line: 20, Col: 1, Analyzer: "mapiter", Message: "unordered"},
		{File: "b.go", Line: 5, Col: 1, Analyzer: "errflow", Message: "discarded"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("subtractBaseline = %+v, want %+v", got, want)
	}
}

func TestSubtractBaselineEmptyBaselinePassesEverything(t *testing.T) {
	diags := []jsonDiag{{File: "a.go", Line: 1, Col: 1, Analyzer: "errflow", Message: "x"}}
	if got := subtractBaseline(diags, nil); !reflect.DeepEqual(got, diags) {
		t.Errorf("empty baseline changed diagnostics: %+v", got)
	}
}

func TestReadBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	in := report{Diagnostics: []jsonDiag{
		{File: "a.go", Line: 1, Col: 2, Analyzer: "unitsafety", Message: "raw literal"},
	}}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	got, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in.Diagnostics) {
		t.Errorf("readBaseline = %+v, want %+v", got, in.Diagnostics)
	}
	if _, err := readBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("readBaseline on a missing file should fail, not silently pass an empty baseline")
	}
}

// TestEmptyBaselineDocument checks the committed empty-baseline shape:
// CI commits {"diagnostics": []} and fails on any addition.
func TestEmptyBaselineDocument(t *testing.T) {
	var r report
	if err := json.Unmarshal([]byte(`{"diagnostics": []}`), &r); err != nil {
		t.Fatal(err)
	}
	if len(r.Diagnostics) != 0 {
		t.Errorf("empty baseline parsed to %d diagnostics", len(r.Diagnostics))
	}
}
