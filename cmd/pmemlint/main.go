// Command pmemlint statically enforces the repo's determinism and
// cache-key invariants (DESIGN.md §7) with eight analyzers:
//
//	mapiter      no map-order-dependent output in report packages
//	wallclock    no wall clock / global rand in the simulation kernel
//	fingerprint  cache keys cover every exported struct field
//	unitsafety   calibrated quantities go through internal/units
//	eventorder   event-heap pushes derive times from the virtual clock;
//	             completion re-posts carry the per-job epoch
//	jsoncontract cluster report fields are omitempty or baselined
//	floatdet     no float accumulation over unordered iteration
//	errflow      no silently discarded errors
//
// It runs two ways:
//
//	pmemlint ./...                          # standalone, loads packages itself
//	go vet -vettool=$(which pmemlint) ./... # as a vet tool (unitchecker protocol)
//
// Standalone mode analyzes packages in dependency order inside one
// fact session, so cross-package facts (eventorder's TimeDerived) flow
// without any on-disk state. Vet mode serializes facts into the .vetx
// file the go command passes between per-package invocations.
//
// Flags (standalone mode):
//
//	-json               emit machine-readable JSON instead of text
//	-baseline file.json suppress diagnostics recorded in the baseline
//
// The JSON report is {"diagnostics":[{file,line,col,analyzer,message}]}
// with repo-relative file paths, sorted, suitable for committing as a
// baseline. A baseline entry suppresses every diagnostic with the same
// file, analyzer and message (line numbers deliberately do not
// participate, so unrelated edits cannot un-suppress an entry).
//
// Standalone mode exits 1 if any diagnostic survives; vet mode follows
// the vet convention and exits 2. Suppress individual findings with
// //pmemlint:ignore <analyzer> <reason>.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pmemsched/internal/analysis"
	"pmemsched/internal/analysis/errflow"
	"pmemsched/internal/analysis/eventorder"
	"pmemsched/internal/analysis/fingerprint"
	"pmemsched/internal/analysis/floatdet"
	"pmemsched/internal/analysis/jsoncontract"
	"pmemsched/internal/analysis/load"
	"pmemsched/internal/analysis/mapiter"
	"pmemsched/internal/analysis/unitsafety"
	"pmemsched/internal/analysis/wallclock"
)

var analyzers = []*analysis.Analyzer{
	errflow.Analyzer,
	eventorder.Analyzer,
	fingerprint.Analyzer,
	floatdet.Analyzer,
	jsoncontract.Analyzer,
	mapiter.Analyzer,
	unitsafety.Analyzer,
	wallclock.Analyzer,
}

func main() {
	args := os.Args[1:]
	// The go command probes a vet tool before use: -V=full must print a
	// version fingerprint, -flags the tool's analyzer flags (we expose
	// none). Handle the probes before normal flag parsing.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			printVersion()
			return
		case a == "-flags" || a == "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		vetMode(args[0])
		return
	}
	standalone(args)
}

func standalone(args []string) {
	fs := flag.NewFlagSet("pmemlint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON on stdout")
	baselinePath := fs.String("baseline", "", "suppress diagnostics recorded in this JSON baseline file")
	fs.Usage = func() {
		//pmemlint:ignore errflow usage text goes to stderr; a failed usage print is not actionable
		fmt.Fprintf(fs.Output(), "usage: pmemlint [-json] [-baseline file.json] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			//pmemlint:ignore errflow usage text goes to stderr; a failed usage print is not actionable
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	units, err := load.Packages(patterns)
	if err != nil {
		fatal(err)
	}
	// One session across all units: load.Packages returns them in
	// dependency order, so facts flow from each unit to its dependents.
	session := analysis.NewSession()
	var diags []analysis.Diagnostic
	for _, u := range units {
		ds, err := session.Run(u, analyzers)
		if err != nil {
			fatal(err)
		}
		diags = append(diags, ds...)
	}
	root, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	jds := toJSONDiags(diags, root)
	if *baselinePath != "" {
		base, err := readBaseline(*baselinePath)
		if err != nil {
			fatal(err)
		}
		jds = subtractBaseline(jds, base)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report{Diagnostics: jds}); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range jds {
			fmt.Printf("%s:%d:%d: %s (%s)\n", d.File, d.Line, d.Col, d.Message, d.Analyzer)
		}
	}
	if len(jds) > 0 {
		fmt.Fprintf(os.Stderr, "pmemlint: %d diagnostic(s)\n", len(jds))
		os.Exit(1)
	}
}

// jsonDiag is one diagnostic in the machine-readable report. File is
// repo-relative (relative to the working directory of the run) so the
// report is stable across checkouts.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// report is the top-level JSON document; the same shape serves as the
// committed baseline.
type report struct {
	Diagnostics []jsonDiag `json:"diagnostics"`
}

// toJSONDiags converts diagnostics to their wire form, relativizing
// paths against root and sorting (file, line, col, analyzer, message).
func toJSONDiags(diags []analysis.Diagnostic, root string) []jsonDiag {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		out = append(out, jsonDiag{
			File:     filepath.ToSlash(file),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

func readBaseline(path string) ([]jsonDiag, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return r.Diagnostics, nil
}

// subtractBaseline drops diagnostics recorded in the baseline, keyed
// by (file, analyzer, message) — line and column shift under unrelated
// edits and would make a committed baseline rot.
func subtractBaseline(diags, base []jsonDiag) []jsonDiag {
	suppressed := make(map[[3]string]bool, len(base))
	for _, b := range base {
		suppressed[[3]string{b.File, b.Analyzer, b.Message}] = true
	}
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		if suppressed[[3]string{d.File, d.Analyzer, d.Message}] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// vetConfig is the JSON configuration the go command hands a vet tool
// for each package unit (cmd/go/internal/work's vetConfig; the same
// schema x/tools' unitchecker consumes). PackageVetx maps each import
// to the facts file an earlier invocation wrote; VetxOutput is where
// this invocation must write its own.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func vetMode(cfgPath string) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("parsing %s: %v", cfgPath, err))
	}
	if len(cfg.GoFiles) == 0 {
		// Nothing to analyze; still satisfy the protocol's facts file.
		writeVetx(cfg, nil)
		return
	}
	fset := token.NewFileSet()
	gc := importer.ForCompiler(fset, compilerFor(cfg), func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	unit, err := load.Check(fset, mappedImporter{cfg.ImportMap, gc}, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg, nil)
			return
		}
		fatal(err)
	}
	// Test variants arrive as "pkg [pkg.test]"; scope rules want the
	// plain import path.
	unit.Path = strings.TrimSuffix(cfg.ImportPath, "_test")
	if i := strings.Index(unit.Path, " ["); i >= 0 {
		unit.Path = unit.Path[:i]
	}
	session := analysis.NewSession()
	importFacts(session, cfg, unit.Pkg)
	diags, err := session.Run(unit, analyzers)
	if err != nil {
		fatal(err)
	}
	writeVetx(cfg, func() []byte {
		out, err := session.EncodeFacts(unit.Pkg, analyzers)
		if err != nil {
			fatal(err)
		}
		return out
	}())
	if cfg.VetxOnly {
		return
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

// importFacts loads the facts earlier vet invocations serialized for
// this unit's imports. Missing or stale vetx content only degrades
// cross-package detection, so read failures are not fatal.
func importFacts(session *analysis.Session, cfg vetConfig, pkg *types.Package) {
	for _, imp := range pkg.Imports() {
		path := imp.Path()
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		vetx, ok := cfg.PackageVetx[path]
		if !ok {
			continue
		}
		data, err := os.ReadFile(vetx)
		if err != nil || len(data) == 0 {
			continue
		}
		if err := session.DecodeFacts(imp, analyzers, data); err != nil {
			fmt.Fprintf(os.Stderr, "pmemlint: ignoring facts for %s: %v\n", path, err)
		}
	}
}

// writeVetx satisfies the protocol: the go command requires the facts
// file to exist even when there are no facts to pass on.
func writeVetx(cfg vetConfig, data []byte) {
	if cfg.VetxOutput == "" {
		return
	}
	if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
		fatal(err)
	}
}

func compilerFor(cfg vetConfig) string {
	if cfg.Compiler == "" || cfg.Compiler == "gc" {
		return "gc"
	}
	return cfg.Compiler
}

// mappedImporter rewrites source-level import paths through the vet
// config's ImportMap (vendoring, test variants) before consulting the
// export-data importer.
type mappedImporter struct {
	importMap map[string]string
	base      types.Importer
}

func (m mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	return m.base.Import(path)
}

// printVersion mimics the version stamp the go command expects from a
// vet tool: a content hash of the tool binary, used as a cache key.
func printVersion() {
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			// Best-effort: an error mid-copy still leaves a hash that
			// changes whenever the binary prefix does.
			_, _ = io.Copy(h, f)
			_ = f.Close()
		}
	}
	fmt.Printf("pmemlint version devel buildID=%02x\n", h.Sum(nil)[:12])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmemlint:", err)
	os.Exit(1)
}
