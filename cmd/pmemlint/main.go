// Command pmemlint statically enforces the repo's determinism and
// cache-key invariants (DESIGN.md §7) with four analyzers:
//
//	mapiter     no map-order-dependent output in report packages
//	wallclock   no wall clock / global rand in the simulation kernel
//	fingerprint cache keys cover every exported struct field
//	unitsafety  calibrated quantities go through internal/units
//
// It runs two ways:
//
//	pmemlint ./...                          # standalone, loads packages itself
//	go vet -vettool=$(which pmemlint) ./... # as a vet tool (unitchecker protocol)
//
// Standalone mode exits 1 if any diagnostic is reported; vet mode
// follows the vet convention and exits 2. Suppress individual findings
// with //pmemlint:ignore <analyzer> <reason>.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"pmemsched/internal/analysis"
	"pmemsched/internal/analysis/fingerprint"
	"pmemsched/internal/analysis/load"
	"pmemsched/internal/analysis/mapiter"
	"pmemsched/internal/analysis/unitsafety"
	"pmemsched/internal/analysis/wallclock"
)

var analyzers = []*analysis.Analyzer{
	fingerprint.Analyzer,
	mapiter.Analyzer,
	unitsafety.Analyzer,
	wallclock.Analyzer,
}

func main() {
	args := os.Args[1:]
	// The go command probes a vet tool before use: -V=full must print a
	// version fingerprint, -flags the tool's analyzer flags (we expose
	// none). Handle the probes before normal flag parsing.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			printVersion()
			return
		case a == "-flags" || a == "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		vetMode(args[0])
		return
	}
	standalone(args)
}

func standalone(args []string) {
	fs := flag.NewFlagSet("pmemlint", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: pmemlint [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, doc)
		}
	}
	fs.Parse(args)
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	units, err := load.Packages(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmemlint:", err)
		os.Exit(1)
	}
	total := 0
	for _, u := range units {
		diags, err := analysis.Run(u, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmemlint:", err)
			os.Exit(1)
		}
		for _, d := range diags {
			fmt.Println(d)
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "pmemlint: %d diagnostic(s)\n", total)
		os.Exit(1)
	}
}

// vetConfig is the JSON configuration the go command hands a vet tool
// for each package unit (cmd/go/internal/work's vetConfig; the same
// schema x/tools' unitchecker consumes).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func vetMode(cfgPath string) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("parsing %s: %v", cfgPath, err))
	}
	// The go command requires the facts file to exist even though
	// pmemlint's analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		return
	}
	fset := token.NewFileSet()
	gc := importer.ForCompiler(fset, compilerFor(cfg), func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	unit, err := load.Check(fset, mappedImporter{cfg.ImportMap, gc}, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatal(err)
	}
	// Test variants arrive as "pkg [pkg.test]"; scope rules want the
	// plain import path.
	unit.Path = strings.TrimSuffix(cfg.ImportPath, "_test")
	if i := strings.Index(unit.Path, " ["); i >= 0 {
		unit.Path = unit.Path[:i]
	}
	diags, err := analysis.Run(unit, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

func compilerFor(cfg vetConfig) string {
	if cfg.Compiler == "" || cfg.Compiler == "gc" {
		return "gc"
	}
	return cfg.Compiler
}

// mappedImporter rewrites source-level import paths through the vet
// config's ImportMap (vendoring, test variants) before consulting the
// export-data importer.
type mappedImporter struct {
	importMap map[string]string
	base      types.Importer
}

func (m mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	return m.base.Import(path)
}

// printVersion mimics the version stamp the go command expects from a
// vet tool: a content hash of the tool binary, used as a cache key.
func printVersion() {
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("pmemlint version devel buildID=%02x\n", h.Sum(nil)[:12])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmemlint:", err)
	os.Exit(1)
}
