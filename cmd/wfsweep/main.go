// Command wfsweep runs parameter sweeps over the workflow space and
// prints the oracle-best configuration per cell — the crossover-map
// generator behind the "sweep" experiment, with the grid configurable
// from the command line.
//
// Usage:
//
//	wfsweep                                      # default grid
//	wfsweep -sizes 2048,65536,4194304 -ranks 4,8,16,24
//	wfsweep -compute 0,0.5,1,2 -size 67108864 -ranksfix 16
//	wfsweep -format csv
//	wfsweep -parallel 8   # size of the run engine's worker pool
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pmemsched"
	"pmemsched/internal/core"
	"pmemsched/internal/trace"
	"pmemsched/internal/units"
	"pmemsched/internal/workflow"
	"pmemsched/internal/workloads"
)

func main() {
	sizesArg := flag.String("sizes", "2048,16384,262144,4194304,67108864", "object sizes in bytes (must divide 1 GiB)")
	ranksArg := flag.String("ranks", "4,8,12,16,20,24", "rank counts for the size sweep")
	computeArg := flag.String("compute", "", "compute-per-iteration values (seconds) for a compute sweep instead")
	sizeFix := flag.Int64("size", 64<<20, "object size for the compute sweep")
	ranksFix := flag.Int("ranksfix", 16, "rank count for the compute sweep")
	format := flag.String("format", "text", "output format: text or csv")
	parallel := flag.Int("parallel", 0, "run-engine worker pool size (0 = GOMAXPROCS)")
	flag.Parse()

	rt := pmemsched.NewRunner(pmemsched.DefaultEnv(), *parallel)

	var t *trace.Table
	var err error
	if *computeArg != "" {
		t, err = computeSweep(rt, parseFloats(*computeArg), *sizeFix, *ranksFix)
	} else {
		t, err = sizeSweep(rt, parseInts64(*sizesArg), parseInts(*ranksArg))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfsweep:", err)
		os.Exit(1)
	}
	switch *format {
	case "text":
		err = t.WriteText(os.Stdout)
	case "csv":
		err = t.WriteCSV(os.Stdout)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfsweep:", err)
		os.Exit(1)
	}
}

func sizeSweep(rt *core.Runner, sizes []int64, ranks []int) (*trace.Table, error) {
	cols := []string{"object size"}
	for _, r := range ranks {
		cols = append(cols, fmt.Sprintf("%dr", r))
	}
	t := &trace.Table{Title: "oracle-best configuration", Columns: cols}
	for _, size := range sizes {
		row := []any{units.FormatBytes(size)}
		for _, r := range ranks {
			dec, err := rt.Oracle(workloads.MicroWorkflow(size, r))
			if err != nil {
				return nil, err
			}
			row = append(row, dec.Best.Config.Label())
		}
		t.AddRow(row...)
	}
	return t, nil
}

func computeSweep(rt *core.Runner, computes []float64, size int64, ranks int) (*trace.Table, error) {
	t := &trace.Table{
		Title:   fmt.Sprintf("oracle-best vs simulation compute (%s objects, %d ranks)", units.FormatBytes(size), ranks),
		Columns: []string{"compute/iter", "sim I/O index", "best", "S-LocW", "S-LocR", "P-LocW", "P-LocR"},
	}
	for _, c := range computes {
		sim := workloads.Micro(size)
		sim.ComputePerIteration = c
		wf := workflow.Couple(fmt.Sprintf("sweep-c%g", c), sim, workloads.ReadOnly(), ranks, workloads.Iterations)
		dec, err := rt.Oracle(wf)
		if err != nil {
			return nil, err
		}
		f, err := rt.Classify(wf)
		if err != nil {
			return nil, err
		}
		row := []any{fmt.Sprintf("%gs", c), fmt.Sprintf("%.2f", f.SimProfile.IOIndex), dec.Best.Config.Label()}
		for _, r := range dec.Results {
			row = append(row, fmt.Sprintf("%.2fs", r.TotalSeconds))
		}
		t.AddRow(row...)
	}
	return t, nil
}

func parseInts(s string) []int {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fmt.Fprintf(os.Stderr, "wfsweep: bad integer %q\n", p)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func parseInts64(s string) []int64 {
	var out []int64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wfsweep: bad size %q\n", p)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wfsweep: bad float %q\n", p)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}
