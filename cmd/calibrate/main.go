// Command calibrate searches the device-model and workload calibration
// space for constants that reproduce the paper's qualitative results:
// the winning configuration for each of the 18 suite workloads
// (Table II) and the effect-size bands the paper states in §VI
// ("S-LocW ... up to 2.5x better", "S-LocR provides 11.5% faster
// runtime than parallel", and so on).
//
// The optimizer is a simple multi-start coordinate descent: the score
// counts correctly predicted winners first and penalizes margin-band
// violations second. The winning constants are meant to be transcribed
// into pmem.Gen1Optane, nova.DefaultCosts and the workloads package;
// the calibration acceptance tests then pin the outcome.
//
// Usage:
//
//	calibrate [-iters N] [-seed S] [-quick]
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"pmemsched/internal/core"
	"pmemsched/internal/numa"
	"pmemsched/internal/platform"
	"pmemsched/internal/pmem"
	"pmemsched/internal/stack"
	"pmemsched/internal/stack/nova"
	"pmemsched/internal/units"
	"pmemsched/internal/workflow"
	"pmemsched/internal/workloads"
)

// param describes one searchable dimension.
type param struct {
	name    string
	lo, hi  float64
	integer bool
}

var params = []param{
	{"novaWriteSW", 3e-6, 1.2e-5, false},      // 0: total per-op write software cost
	{"novaReadSW", 4e-7, 4.0e-6, false},       // 1: total per-op read software cost
	{"rwSlopeBase", 0, 0.03, false},           // 2
	{"rwSlopePressure", 0.02, 0.30, false},    // 3
	{"dragBase", 0, 0.06, false},              // 4
	{"dragPressure", 0, 0.35, false},          // 5
	{"mixPenalty", 0.15, 0.65, false},         // 6
	{"smallMixBoost", 0, 0.30, false},         // 7
	{"mixPressureFloor", 0.05, 1, false},      // 8
	{"mixOnsetOps", 4, 24, true},              // 9
	{"mixRampSpan", 4, 40, true},              // 10
	{"dimmSlope", 0, 0.025, false},            // 11
	{"xpThrashSlope", 0, 0.04, false},         // 12
	{"pressureTau", 0.5, 6, false},            // 13
	{"gtcCompute", 0.8, 4.2, false},           // 14
	{"mmGTCPerObject", 0.1, 1.2, false},       // 15
	{"miniamrCompute", 0.01, 0.15, false},     // 16
	{"mmMiniAMRPerObject", 5e-7, 8e-6, false}, // 17
	{"remoteReadSpan", 0.05, 0.8, false},      // 18: max penalty - base
	{"remoteReadBase", 0, 0.2, false},         // 19: base - 1
	{"writeDecay", 0, 0.03, false},            // 20
	{"xpThrashOps", 12, 48, true},             // 21
	{"remoteFreeOps", 0.5, 4, false},          // 22
	{"rwQuadBase", 0, 0.004, false},           // 23
	{"rwQuadPressure", 0, 0.012, false},       // 24
	{"remoteReadRampOps", 3, 24, false},       // 25
	{"rwPressureKnee", 0.08, 0.6, false},      // 26
	{"rwPressureWidth", 0.02, 0.2, false},     // 27
	{"rwSatSlope", 0, 0.35, false},            // 28
	{"rwSatOps", 0.3, 8, false},               // 29
	{"rrLatQueue", 0, 1.2e-7, false},          // 30
}

// point is one candidate parameter vector.
type point []float64

func (p point) clone() point { return append(point(nil), p...) }

// settings materializes a candidate into model/cost/workload constants.
type settings struct {
	model     pmem.Model
	novaCosts nova.Costs

	gtcCompute float64
	mmGTC      float64
	maCompute  float64
	mmMA       float64
}

func materialize(p point) settings {
	m := pmem.Gen1Optane()
	m.RemoteWriteSlopeBase = p[2]
	m.RemoteWriteSlopePressure = p[3]
	m.RemoteReadDragBase = p[4]
	m.RemoteReadDragPressure = p[5]
	m.MixPenalty = p[6]
	m.SmallMixBoost = p[7]
	m.MixPressureFloor = p[8]
	m.MixOnsetOps = int(math.Round(p[9]))
	m.MixFullOps = m.MixOnsetOps + int(math.Round(p[10]))
	m.DimmSlope = p[11]
	m.XPThrashSlope = p[12]
	m.PressureTau = p[13]
	m.RemoteReadBase = 1 + p[19]
	m.RemoteReadMaxPenalty = m.RemoteReadBase + p[18]
	m.WriteDecay = p[20]
	m.XPThrashOps = int(math.Round(p[21]))
	m.RemoteFreeOps = p[22]
	m.RemoteWriteQuadBase = p[23]
	m.RemoteWriteQuadPressure = p[24]
	m.RemoteReadRampOps = p[25]
	m.RemoteWritePressureKnee = p[26]
	m.RemoteWritePressureWidth = p[27]
	m.RemoteWriteSatSlope = p[28]
	m.RemoteWriteSatOps = p[29]
	m.RemoteReadLatQueue = p[30]

	costs := nova.DefaultCosts()
	costs.WriteLog = p[0] - costs.SyscallCross
	costs.ReadLookup = p[1] - costs.SyscallCross
	if costs.ReadLookup < 50*units.Nanosecond {
		costs.ReadLookup = 50 * units.Nanosecond
	}
	if costs.WriteLog < 100*units.Nanosecond {
		costs.WriteLog = 100 * units.Nanosecond
	}
	return settings{
		model:      m,
		novaCosts:  costs,
		gtcCompute: p[14],
		mmGTC:      p[15],
		maCompute:  p[16],
		mmMA:       p[17],
	}
}

func (s settings) env() core.Env {
	return core.Env{
		NewMachine: func() *platform.Machine {
			return platform.New(numa.TestbedConfig(), s.model)
		},
		NewStack: func() stack.Instance { return nova.New(s.novaCosts) },
	}
}

// suite builds the 18 workloads with the candidate's workload constants.
func (s settings) suite() []workflow.Spec {
	gtc := workloads.GTC()
	gtc.ComputePerIteration = s.gtcCompute
	mmGTC := workloads.MatrixMultGTC()
	mmGTC.ComputePerObject = s.mmGTC
	mmMA := workloads.MatrixMultMiniAMR()
	mmMA.ComputePerObject = s.mmMA

	var out []workflow.Spec
	for _, r := range []int{8, 16, 24} {
		out = append(out, workloads.MicroWorkflow(workloads.MicroObjectLarge, r))
	}
	for _, r := range []int{8, 16, 24} {
		out = append(out, workloads.MicroWorkflow(workloads.MicroObjectSmall, r))
	}
	for _, r := range []int{8, 16, 24} {
		out = append(out, workflow.Couple(fmt.Sprintf("gtc+readonly/%dr", r), gtc, workloads.ReadOnlyApp(), r, workloads.Iterations))
	}
	for _, r := range []int{8, 16, 24} {
		out = append(out, workflow.Couple(fmt.Sprintf("gtc+matrixmult/%dr", r), gtc, mmGTC, r, workloads.Iterations))
	}
	for _, r := range []int{8, 16, 24} {
		ma := workloads.MiniAMR(r)
		ma.ComputePerIteration = s.maCompute
		out = append(out, workflow.Couple(fmt.Sprintf("miniamr+readonly/%dr", r), ma, workloads.ReadOnlyApp(), r, workloads.Iterations))
	}
	for _, r := range []int{8, 16, 24} {
		ma := workloads.MiniAMR(r)
		ma.ComputePerIteration = s.maCompute
		out = append(out, workflow.Couple(fmt.Sprintf("miniamr+matrixmult/%dr", r), ma, mmMA, r, workloads.Iterations))
	}
	return out
}

// band is a ratio constraint between two configurations' runtimes.
type band struct {
	num, den core.Config
	lo, hi   float64
	label    string
}

// target encodes one suite row's expected outcome.
type target struct {
	index int // into suite()
	name  string
	want  core.Config
	bands []band
}

// specialBest markers for bands comparing against the best of a mode.
var (
	bestParallel = core.Config{Mode: core.Parallel, Placement: 99}
	bestSerial   = core.Config{Mode: core.Serial, Placement: 99}
)

func targets() []target {
	sw, sr, pw, pr := core.SLocW, core.SLocR, core.PLocW, core.PLocR
	return []target{
		{0, "micro-64MB/8", sw, nil},
		{1, "micro-64MB/16", sw, []band{{sr, sw, 1.3, 3.6, "S-LocR vs S-LocW"}}},
		{2, "micro-64MB/24", sw, []band{{sr, sw, 1.6, 3.4, "2.5x claim"}}},
		{3, "micro-2K/8", pr, []band{{sr, pr, 1.03, 1.40, "10-14% over S-LocR"}}},
		{4, "micro-2K/16", pr, []band{{sr, pr, 1.03, 1.40, "10-14% over S-LocR"}}},
		{5, "micro-2K/24", sr, []band{{bestParallel, sr, 1.03, 1.45, "11.5% over parallel"}}},
		{6, "gtc+ro/8", pr, []band{{bestSerial, pr, 1.01, 1.30, "3-9% over serial"}}},
		{7, "gtc+ro/16", sr, []band{{bestParallel, sr, 1.01, 1.30, "6-7% over parallel"}}},
		{8, "gtc+ro/24", sw, []band{{sr, sw, 1.02, 1.40, "6% over S-LocR"}}},
		{9, "gtc+mm/8", pr, []band{{bestSerial, pr, 1.01, 1.35, "3-9% over serial"}}},
		{10, "gtc+mm/16", pr, nil},
		{11, "gtc+mm/24", sw, nil},
		{12, "miniamr+ro/8", pr, nil},
		{13, "miniamr+ro/16", sr, []band{{pr, sr, 1.01, 1.35, "6% over P-LocR"}}},
		{14, "miniamr+ro/24", sw, []band{{sr, sw, 1.08, 1.90, "25% over S-LocR"}}},
		{15, "miniamr+mm/8", pw, []band{{pr, pw, 1.01, 1.30, "7% over P-LocR"}}},
		{16, "miniamr+mm/16", sw, nil},
		{17, "miniamr+mm/24", sw, nil},
	}
}

// evaluation result for one candidate.
type evalResult struct {
	score    float64
	correct  int
	detail   []string
	runtimes [][]float64 // [row][configIdx]
}

func configIdx(c core.Config) int {
	for i, cc := range core.Configs {
		if cc == c {
			return i
		}
	}
	return -1
}

func evaluate(p point) evalResult {
	s := materialize(p)
	if err := s.model.Validate(); err != nil {
		return evalResult{score: -1e9, detail: []string{err.Error()}}
	}
	suite := s.suite()
	env := s.env()

	runtimes := make([][]float64, len(suite))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	sem := make(chan struct{}, 16)
	for i := range suite {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := core.RunAll(suite[i], env)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			row := make([]float64, len(res))
			for j, r := range res {
				row[j] = r.TotalSeconds
			}
			runtimes[i] = row
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return evalResult{score: -1e9, detail: []string{firstErr.Error()}}
	}

	// Feature labels: the measured I/O indexes must bucket into the
	// qualitative labels Table II assigns each workload family.
	labelPenalty := func(i int) float64 {
		f, err := core.Classify(suite[i], env)
		if err != nil {
			return 2
		}
		bad := 0.0
		inSet := func(v workflow.IOLevel, set ...workflow.IOLevel) bool {
			for _, s := range set {
				if v == s {
					return true
				}
			}
			return false
		}
		switch {
		case i < 6: // microbenchmarks
			if f.SimCompute != workflow.LevelNil || f.SimWrite != workflow.LevelHigh ||
				f.AnaCompute != workflow.LevelNil || f.AnaRead != workflow.LevelHigh {
				bad++
			}
		case i < 9: // gtc+readonly
			if f.SimCompute != workflow.LevelHigh || f.SimWrite != workflow.LevelLow ||
				!inSet(f.AnaCompute, workflow.LevelNil, workflow.LevelLow) || f.AnaRead != workflow.LevelHigh {
				bad++
			}
		case i < 12: // gtc+matrixmult
			if f.SimCompute != workflow.LevelHigh || f.SimWrite != workflow.LevelLow ||
				!inSet(f.AnaCompute, workflow.LevelMedium, workflow.LevelHigh) {
				bad++
			}
		case i < 15: // miniamr+readonly
			if f.SimCompute != workflow.LevelLow || f.SimWrite != workflow.LevelHigh ||
				f.AnaCompute != workflow.LevelLow || f.AnaRead != workflow.LevelHigh {
				bad++
			}
		default: // miniamr+matrixmult
			if f.SimCompute != workflow.LevelLow || f.SimWrite != workflow.LevelHigh ||
				!inSet(f.AnaCompute, workflow.LevelMedium, workflow.LevelHigh) ||
				!inSet(f.AnaRead, workflow.LevelLow, workflow.LevelMedium) {
				bad++
			}
		}
		return bad
	}
	labels := make([]float64, len(suite))
	var lwg sync.WaitGroup
	for i := range suite {
		lwg.Add(1)
		go func(i int) {
			defer lwg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			labels[i] = labelPenalty(i)
		}(i)
	}
	lwg.Wait()

	// Classification/recommendation agreement: the Table II rule engine
	// (driven by the candidate's measured I/O indexes) must pick each
	// workload's oracle-best configuration, or tab2 fails.
	recs := make([]core.Config, len(suite))
	recErr := make([]error, len(suite))
	var rwg sync.WaitGroup
	for i := range suite {
		rwg.Add(1)
		go func(i int) {
			defer rwg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rec, err := core.RecommendWorkflow(suite[i], env)
			if err != nil {
				recErr[i] = err
				return
			}
			recs[i] = rec.Config
		}(i)
	}
	rwg.Wait()

	er := evalResult{runtimes: runtimes}
	for _, t := range targets() {
		row := runtimes[t.index]
		bestIdx := 0
		for j := range row {
			if row[j] < row[bestIdx] {
				bestIdx = j
			}
		}
		wantIdx := configIdx(t.want)
		if bestIdx == wantIdx {
			er.correct++
			er.score += 100
			// Reward a non-knife-edge win: second best at least 0.5% away.
			second := math.Inf(1)
			for j := range row {
				if j != wantIdx && row[j] < second {
					second = row[j]
				}
			}
			margin := second/row[wantIdx] - 1
			if margin < 0.005 {
				er.score -= 20 * (0.005 - margin) / 0.005
			}
		} else {
			// Partial credit for being close.
			gap := row[wantIdx]/row[bestIdx] - 1
			er.score -= 40 * math.Min(1, gap/0.25)
			er.detail = append(er.detail, fmt.Sprintf("%s: want %s got %s (gap %.1f%%)",
				t.name, t.want.Label(), core.Configs[bestIdx].Label(), gap*100))
		}
		if labels[t.index] > 0 {
			er.score -= 25 * labels[t.index]
			er.detail = append(er.detail, fmt.Sprintf("%s: feature labels off Table II", t.name))
		}
		if recErr[t.index] != nil {
			er.score -= 50
			er.detail = append(er.detail, fmt.Sprintf("%s: recommend error: %v", t.name, recErr[t.index]))
		} else if recs[t.index] != core.Configs[bestIdx] {
			er.score -= 35
			er.detail = append(er.detail, fmt.Sprintf("%s: rules pick %s, oracle %s",
				t.name, recs[t.index].Label(), core.Configs[bestIdx].Label()))
		}
		for _, b := range t.bands {
			num := bandValue(row, b.num)
			den := bandValue(row, b.den)
			ratio := num / den
			var viol float64
			if ratio < b.lo {
				viol = math.Log(b.lo / ratio)
			} else if ratio > b.hi {
				viol = math.Log(ratio / b.hi)
			}
			if viol > 0 {
				er.score -= 30 * viol
				er.detail = append(er.detail, fmt.Sprintf("%s: band %s ratio %.3f outside [%.2f,%.2f]",
					t.name, b.label, ratio, b.lo, b.hi))
			}
		}
	}
	return er
}

func bandValue(row []float64, c core.Config) float64 {
	if c.Placement == 99 {
		best := math.Inf(1)
		for j, cc := range core.Configs {
			if cc.Mode == c.Mode && row[j] < best {
				best = row[j]
			}
		}
		return best
	}
	return row[configIdx(c)]
}

func defaultPoint() point {
	m := pmem.Gen1Optane()
	costs := nova.DefaultCosts()
	return point{
		costs.SyscallCross + costs.WriteLog,
		costs.SyscallCross + costs.ReadLookup,
		m.RemoteWriteSlopeBase,
		m.RemoteWriteSlopePressure,
		m.RemoteReadDragBase,
		m.RemoteReadDragPressure,
		m.MixPenalty,
		m.SmallMixBoost,
		m.MixPressureFloor,
		float64(m.MixOnsetOps),
		float64(m.MixFullOps - m.MixOnsetOps),
		m.DimmSlope,
		m.XPThrashSlope,
		m.PressureTau,
		workloads.GTC().ComputePerIteration,
		workloads.MatrixMultGTC().ComputePerObject,
		workloads.MiniAMR(8).ComputePerIteration,
		workloads.MatrixMultMiniAMR().ComputePerObject,
		m.RemoteReadMaxPenalty - m.RemoteReadBase,
		m.RemoteReadBase - 1,
		m.WriteDecay,
		float64(m.XPThrashOps),
		m.RemoteFreeOps,
		m.RemoteWriteQuadBase,
		m.RemoteWriteQuadPressure,
		m.RemoteReadRampOps,
		m.RemoteWritePressureKnee,
		m.RemoteWritePressureWidth,
		m.RemoteWriteSatSlope,
		m.RemoteWriteSatOps,
		m.RemoteReadLatQueue,
	}
}

func clampPoint(p point) {
	for i := range p {
		if p[i] < params[i].lo {
			p[i] = params[i].lo
		}
		if p[i] > params[i].hi {
			p[i] = params[i].hi
		}
		if params[i].integer {
			p[i] = math.Round(p[i])
		}
	}
}

func main() {
	iters := flag.Int("iters", 6, "coordinate-descent sweeps")
	focus := flag.String("focus", "", "comma-separated parameter indices to randomize around the defaults (random search instead of coordinate descent)")
	samples := flag.Int("samples", 400, "random samples in -focus mode")
	seed := flag.Int64("seed", 1, "random seed for restarts")
	restarts := flag.Int("restarts", 2, "random restarts")
	quick := flag.Bool("quick", false, "evaluate the current defaults and exit")
	pointArg := flag.String("point", "", "evaluate a comma-separated parameter vector and exit")
	flag.Parse()

	if *pointArg != "" {
		parts := strings.Split(*pointArg, ",")
		if len(parts) != len(params) {
			fmt.Fprintf(os.Stderr, "calibrate: point has %d values, want %d\n", len(parts), len(params))
			os.Exit(2)
		}
		p := make(point, len(parts))
		for i, s := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fmt.Fprintln(os.Stderr, "calibrate:", err)
				os.Exit(2)
			}
			p[i] = v
		}
		clampPoint(p)
		report(p)
		return
	}
	if *quick {
		report(defaultPoint())
		return
	}

	rng := rand.New(rand.NewSource(*seed))
	best := defaultPoint()
	bestEval := evaluate(best)
	fmt.Printf("start: score %.1f correct %d/18\n", bestEval.score, bestEval.correct)

	if *focus != "" {
		var idx []int
		for _, s := range strings.Split(*focus, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 0 || v >= len(params) {
				fmt.Fprintf(os.Stderr, "calibrate: bad focus index %q\n", s)
				os.Exit(2)
			}
			idx = append(idx, v)
		}
		for s := 0; s < *samples; s++ {
			cand := best.clone()
			for _, i := range idx {
				span := params[i].hi - params[i].lo
				cand[i] += (rng.Float64() - 0.5) * 0.5 * span
			}
			clampPoint(cand)
			ce := evaluate(cand)
			if ce.score > bestEval.score {
				best, bestEval = cand, ce
				fmt.Printf("sample %d: score %.1f correct %d/18\n  new best: %v\n", s, ce.score, ce.correct, []float64(best))
			}
		}
		fmt.Println("\n=== best ===")
		report(best)
		return
	}

	for restart := 0; restart <= *restarts; restart++ {
		var cur point
		if restart == 0 {
			cur = best.clone()
		} else {
			cur = best.clone()
			for i := range cur {
				span := params[i].hi - params[i].lo
				cur[i] += (rng.Float64() - 0.5) * 0.3 * span
			}
			clampPoint(cur)
		}
		curEval := evaluate(cur)
		for sweep := 0; sweep < *iters; sweep++ {
			improved := false
			for i := range params {
				span := params[i].hi - params[i].lo
				steps := []float64{-0.18 * span, -0.06 * span, -0.02 * span, -0.007 * span,
					0.007 * span, 0.02 * span, 0.06 * span, 0.18 * span}
				for _, d := range steps {
					cand := cur.clone()
					cand[i] += d
					clampPoint(cand)
					if cand[i] == cur[i] {
						continue
					}
					ce := evaluate(cand)
					if ce.score > curEval.score {
						cur, curEval = cand, ce
						improved = true
					}
				}
			}
			fmt.Printf("restart %d sweep %d: score %.1f correct %d/18\n", restart, sweep, curEval.score, curEval.correct)
			if curEval.score > bestEval.score {
				best, bestEval = cur.clone(), curEval
				fmt.Printf("  new best: %v\n", []float64(best))
			}
			if !improved {
				break
			}
		}
		if curEval.score > bestEval.score {
			best, bestEval = cur, curEval
		}
	}

	fmt.Println("\n=== best ===")
	report(best)
}

func report(p point) {
	er := evaluate(p)
	fmt.Printf("score %.1f, correct %d/18\n", er.score, er.correct)
	for i, prm := range params {
		fmt.Printf("  %-22s %.6g\n", prm.name, p[i])
	}
	sort.Strings(er.detail)
	for _, d := range er.detail {
		fmt.Println("  !", d)
	}
	s := materialize(p)
	suite := s.suite()
	tg := targets()
	for _, t := range tg {
		row := er.runtimes[t.index]
		if row == nil {
			continue
		}
		bestIdx := 0
		for j := range row {
			if row[j] < row[bestIdx] {
				bestIdx = j
			}
		}
		mark := " "
		if core.Configs[bestIdx] == t.want {
			mark = "*"
		}
		fmt.Printf("%s %-22s want %-6s got %-6s  [%7.2f %7.2f %7.2f %7.2f]\n",
			mark, suite[t.index].Name, t.want.Label(), core.Configs[bestIdx].Label(),
			row[0], row[1], row[2], row[3])
	}
	if er.score <= -1e8 {
		os.Exit(1)
	}
}
