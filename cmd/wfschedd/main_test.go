package main

import (
	"bytes"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // stderr substring
	}{
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"unknown stack", []string{"-stack", "zfs"}, "unknown stack"},
		{"unknown policy", []string{"-policy", "sjf"}, "unknown policy"},
		{"unknown config", []string{"-config", "X-LocW"}, "configuration"},
		{"negative nodes", []string{"-nodes", "-1"}, "-nodes must be non-negative"},
		{"positional args", []string{"serve"}, "unexpected arguments"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit code %d, want 2 (stderr %q)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.want) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), tc.want)
			}
		})
	}
}

// addrWatcher captures stdout and reports the announced listen address.
type addrWatcher struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	addr chan string
	once sync.Once
}

var addrRE = regexp.MustCompile(`listening on http://(\S+)`)

func (w *addrWatcher) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n, err := w.buf.Write(p)
	if m := addrRE.FindSubmatch(w.buf.Bytes()); m != nil {
		w.once.Do(func() { w.addr <- string(m[1]) })
	}
	return n, err
}

// TestServeAndGracefulShutdown boots the daemon on a free port, drives
// one decision and one placement query over real HTTP, then delivers
// SIGTERM and expects a clean drain with exit code 0 — the same
// sequence CI's smoke job runs against the built binary.
func TestServeAndGracefulShutdown(t *testing.T) {
	w := &addrWatcher{addr: make(chan string, 1)}
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-quiet", "-nodes", "2"}, w, io.Discard)
	}()

	var addr string
	select {
	case addr = <-w.addr:
	case code := <-done:
		t.Fatalf("daemon exited early with code %d", code)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never announced its address")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Errorf("closing healthz body: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/recommend", "application/json",
		strings.NewReader(`{"name":"micro-2k","ranks":4}`))
	if err != nil {
		t.Fatalf("recommend: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatalf("recommend body: %v", err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"config"`) {
		t.Fatalf("recommend status %d body %s", resp.StatusCode, body)
	}

	resp, err = http.Get(base + "/v1/state")
	if err != nil {
		t.Fatalf("state: %v", err)
	}
	body, err = io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatalf("state body: %v", err)
	}
	if !strings.Contains(string(body), `"cores_per_socket":28`) {
		t.Fatalf("state does not show the pre-registered fleet: %s", body)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("sending SIGTERM: %v", err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d after SIGTERM, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain within 10s of SIGTERM")
	}
	w.mu.Lock()
	out := w.buf.String()
	w.mu.Unlock()
	if !strings.Contains(out, "draining") || !strings.Contains(out, "bye") {
		t.Errorf("shutdown narration missing from stdout: %q", out)
	}
}

// TestPortCollision checks the daemon reports a bind failure instead
// of serving nothing quietly.
func TestPortCollision(t *testing.T) {
	w := &addrWatcher{addr: make(chan string, 1)}
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-quiet"}, w, io.Discard)
	}()
	var addr string
	select {
	case addr = <-w.addr:
	case <-time.After(10 * time.Second):
		t.Fatal("first daemon never started")
	}
	defer func() {
		if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatalf("sending SIGTERM: %v", err)
		}
		<-done
	}()

	var stderr bytes.Buffer
	if code := run([]string{"-addr", addr, "-quiet"}, io.Discard, &stderr); code != 1 {
		t.Fatalf("second daemon on %s: exit %d, want 1 (stderr %q)", addr, code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "address already in use") {
		t.Errorf("stderr %q does not explain the bind failure", stderr.String())
	}
}

func TestEnvForError(t *testing.T) {
	if _, err := envFor("ext4"); err == nil || !strings.Contains(err.Error(), "unknown stack") {
		t.Errorf("envFor(ext4) error %v", err)
	}
}
