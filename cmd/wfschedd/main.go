// Command wfschedd serves the paper's scheduling decisions over
// HTTP/JSON: Table II configuration recommendations backed by the
// shared memoized run engine, and stateful cluster placement driven by
// the internal/cluster policies. See DESIGN.md "Scheduler as a
// service" for the API.
//
// Usage:
//
//	wfschedd                          # listen on 127.0.0.1:8080
//	wfschedd -addr :9000 -nodes 4     # custom port, 4 nodes pre-registered
//	wfschedd -policy easy -config S-LocW
//	wfschedd -stack nvstream -workers 8
//	wfschedd -max-inflight 64 -batch-window 5ms -deadline 10s
//
// The daemon drains gracefully on SIGINT/SIGTERM: in-flight requests
// finish (bounded by -drain), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pmemsched"
	"pmemsched/internal/cli"
	"pmemsched/internal/cluster"
	"pmemsched/internal/core"
	"pmemsched/internal/schedd"
	"pmemsched/internal/stack"
	"pmemsched/internal/stack/nova"
	"pmemsched/internal/stack/nvstream"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wfschedd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	workers := fs.Int("workers", 0, "run-engine worker pool size (0 = GOMAXPROCS)")
	stackName := fs.String("stack", "nova", "storage stack: nova or nvstream")
	policyName := fs.String("policy", "pmem-aware", "placement policy: fcfs, easy, pmem-aware, easy-i or pmem-aware-i")
	configName := fs.String("config", "S-LocW", "fixed site-wide configuration for fcfs/easy (S-LocW, S-LocR, P-LocW, P-LocR)")
	cores := fs.Int("cores", 0, "cores per socket per node (0 = the testbed's)")
	nodes := fs.Int("nodes", 0, "pre-register this many nodes at startup")
	maxInflight := fs.Int("max-inflight", 0, "admission limit on concurrent decision requests (0 = 8x workers)")
	batchWindow := fs.Duration("batch-window", 0, "recommend micro-batch collection window (0 = 2ms)")
	batchMax := fs.Int("batch-max", 0, "max recommend requests per micro-batch (0 = 64)")
	batchers := fs.Int("batchers", 0, "concurrent batch collectors (0 = min(4, GOMAXPROCS))")
	deadline := fs.Duration("deadline", 0, "per-request decision deadline (0 = 30s)")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
	quiet := fs.Bool("quiet", false, "suppress per-request logs")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		cli.Sayf(stderr, "wfschedd: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	env, err := envFor(*stackName)
	if err != nil {
		cli.Sayln(stderr, "wfschedd:", err)
		return 2
	}
	fixed, err := core.ParseConfig(*configName)
	if err != nil {
		cli.Sayln(stderr, "wfschedd:", err)
		return 2
	}
	policy, err := cluster.ParsePolicy(*policyName, fixed)
	if err != nil {
		cli.Sayln(stderr, "wfschedd:", err)
		return 2
	}
	if *nodes < 0 {
		cli.Sayf(stderr, "wfschedd: -nodes must be non-negative, got %d\n", *nodes)
		return 2
	}

	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewTextHandler(stderr, nil))
	}
	srv, err := schedd.New(schedd.Config{
		Runner:         core.NewRunner(env, *workers),
		Policy:         policy,
		CoresPerSocket: *cores,
		MaxInflight:    *maxInflight,
		BatchWindow:    *batchWindow,
		MaxBatch:       *batchMax,
		Batchers:       *batchers,
		RequestTimeout: *deadline,
		Logger:         logger,
	})
	if err != nil {
		cli.Sayln(stderr, "wfschedd:", err)
		return 2
	}
	if *nodes > 0 {
		srv.AddNodes(*nodes)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		cli.Sayln(stderr, "wfschedd:", err)
		return 1
	}
	cli.Sayf(stdout, "wfschedd: listening on http://%s (policy %s, stack %s)\n",
		ln.Addr(), *policyName, *stackName)

	httpSrv := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	served := make(chan error, 1)
	go func() { served <- httpSrv.Serve(ln) }()

	select {
	case <-ctx.Done():
		stop() // a second signal kills immediately instead of draining
		cli.Sayln(stdout, "wfschedd: draining")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		err := httpSrv.Shutdown(shutdownCtx)
		srv.Close() // after Shutdown: no handler is enqueuing anymore
		if err != nil {
			cli.Sayln(stderr, "wfschedd: drain incomplete:", err)
			return 1
		}
		cli.Sayln(stdout, "wfschedd: bye")
		return 0
	case err := <-served:
		srv.Close()
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			cli.Sayln(stderr, "wfschedd:", err)
			return 1
		}
		return 0
	}
}

func envFor(name string) (core.Env, error) {
	env := pmemsched.DefaultEnv()
	switch name {
	case "nova":
		env.NewStack = func() stack.Instance { return nova.Default() }
	case "nvstream":
		env.NewStack = func() stack.Instance { return nvstream.Default() }
	default:
		return env, fmt.Errorf("unknown stack %q (want nova or nvstream)", name)
	}
	return env, nil
}
