// GTC in-situ: the full decision pipeline for a compute-intensive
// simulation with large checkpoint objects, including the three-way
// crossover the paper finds for GTC + Read-Only (P-LocR at 8 ranks,
// S-LocR at 16, S-LocW at 24) and what the analytics swap to
// MatrixMult does to those choices.
package main

import (
	"fmt"
	"log"

	"pmemsched"
)

func main() {
	env := pmemsched.DefaultEnv()

	fmt.Println("GTC + Read-Only (Fig 6): optimal configuration vs concurrency")
	for _, ranks := range []int{8, 16, 24} {
		wf := pmemsched.GTCReadOnly(ranks)
		dec, err := pmemsched.Oracle(wf, env)
		if err != nil {
			log.Fatal(err)
		}
		rec, err := pmemsched.RecommendWorkflow(wf, env)
		if err != nil {
			log.Fatal(err)
		}
		agree := "agrees"
		if rec.Config != dec.Best.Config {
			agree = "DISAGREES"
		}
		fmt.Printf("  %2d ranks: oracle %-7s  Table II row %d %s (%s)\n",
			ranks, dec.Best.Config.Label(), rec.Row.ID, rec.Config.Label(), agree)
	}

	// Swapping the analytics kernel while keeping the configuration
	// tuned for the old one — the paper's §VII warning quantified.
	fmt.Println("\nanalytics swap at 16 ranks:")
	ro := pmemsched.GTCReadOnly(16)
	mm := pmemsched.GTCMatrixMult(16)
	roDec, err := pmemsched.Oracle(ro, env)
	if err != nil {
		log.Fatal(err)
	}
	mmDec, err := pmemsched.Oracle(mm, env)
	if err != nil {
		log.Fatal(err)
	}
	staleCfg := roDec.Best.Config // tuned for read-only analytics
	fmt.Printf("  %s tuned for %s: best %s\n", ro.Name, ro.Name, staleCfg.Label())
	fmt.Printf("  after swapping in matrixmult, %s costs %.1f%% over the new best (%s)\n",
		staleCfg.Label(), mmDec.Regret(staleCfg)*100, mmDec.Best.Config.Label())

	// Device-level view: why the 24-rank case flips to local writes.
	fmt.Println("\nwriter device time per configuration at 24 ranks:")
	for _, cfg := range pmemsched.Configs {
		res, err := pmemsched.Run(pmemsched.GTCReadOnly(24), cfg, env)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s writer io %6.2fs  total %6.2fs\n", cfg.Label(), res.Writer.IO, res.TotalSeconds)
	}
}
