// Capacity planning: use the simulator as a what-if engine — find the
// smallest rank count that meets an end-to-end deadline for a custom
// workflow, with the configuration chosen per rank count by the
// Table II rules, and export the winning run's timeline for the Chrome
// trace viewer.
package main

import (
	"fmt"
	"log"
	"os"

	"pmemsched"
	"pmemsched/internal/units"
)

func main() {
	env := pmemsched.DefaultEnv()

	// A pipeline that must finish its 10 snapshots within a deadline.
	const deadlineSeconds = 9 * units.Second
	build := func(ranks int) pmemsched.Workflow {
		sim := pmemsched.Component{
			Name:                "spectral-sim",
			ComputePerIteration: 0.45,
			Objects: []pmemsched.ObjectSpec{
				{Bytes: 32 << 20, CountPerRank: 4}, // 128 MiB of field data per rank
			},
		}
		return pmemsched.Couple("spectral+reduce", sim,
			pmemsched.AnalyticsKernel{Name: "reduce", ComputePerObject: 0.02}, ranks, 10)
	}

	fmt.Printf("deadline: %.1fs end-to-end\n", deadlineSeconds)
	var chosenRanks int
	var chosen pmemsched.Result
	for _, ranks := range []int{4, 8, 12, 16, 20, 24} {
		wf := build(ranks)
		rec, err := pmemsched.RecommendWorkflow(wf, env)
		if err != nil {
			log.Fatal(err)
		}
		res, err := pmemsched.Run(wf, rec.Config, env)
		if err != nil {
			log.Fatal(err)
		}
		meets := res.TotalSeconds <= deadlineSeconds
		fmt.Printf("  %2d ranks: %-7s %6.2fs  meets deadline: %v\n",
			ranks, rec.Config.Label(), res.TotalSeconds, meets)
		if meets && chosenRanks == 0 {
			chosenRanks = ranks
			chosen = res
		}
	}
	if chosenRanks == 0 {
		fmt.Println("no rank count meets the deadline on this platform")
		return
	}
	fmt.Printf("\nplan: %d ranks under %s (%.2fs, %.0f%% headroom)\n",
		chosenRanks, chosen.Config.Label(), chosen.TotalSeconds,
		(deadlineSeconds/chosen.TotalSeconds-1)*100)

	// Export the planned run's timeline for chrome://tracing.
	_, tracer, err := pmemsched.RunWithTrace(build(chosenRanks), chosen.Config, env, true)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create("capacity_plan_trace.json")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := tracer.WriteChromeTrace(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("timeline: capacity_plan_trace.json (%d events; open in chrome://tracing)\n",
		len(tracer.Events))
}
