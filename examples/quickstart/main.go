// Quickstart: run one in-situ workflow under every scheduling
// configuration on the simulated Optane testbed and see why the
// configuration choice matters.
package main

import (
	"fmt"
	"log"

	"pmemsched"
)

func main() {
	// GTC (a compute-intensive fusion simulation checkpointing a few
	// large arrays) coupled with a read-only analytics, 16 ranks each —
	// the paper's Fig 6b workload.
	wf := pmemsched.GTCReadOnly(16)
	env := pmemsched.DefaultEnv()

	results, err := pmemsched.RunAll(wf, env)
	if err != nil {
		log.Fatal(err)
	}
	best := pmemsched.Best(results)
	fmt.Printf("workflow %s\n", wf)
	for _, r := range results {
		marker := "  "
		if r.Config == best.Config {
			marker = "->"
		}
		fmt.Printf("%s %-7s %7.2fs (writer %6.2fs, reader-after-writer %5.2fs)\n",
			marker, r.Config.Label(), r.TotalSeconds, r.WriterSplit, r.ReaderSplit)
	}
	worst := results[0]
	for _, r := range results {
		if r.TotalSeconds > worst.TotalSeconds {
			worst = r
		}
	}
	fmt.Printf("\npicking %s over %s saves %.1f%% end-to-end runtime\n",
		best.Config.Label(), worst.Config.Label(),
		(1-best.TotalSeconds/worst.TotalSeconds)*100)
}
