// Online cluster scheduling: stream the paper's 18-workload suite at a
// 2-node cluster and watch the PMEM-aware policy — per-job Table II
// configuration decisions inside an EASY-backfill loop — beat every
// fixed site-wide configuration on queueing metrics.
//
// The walkthrough builds the bundled arrival trace (seeded, so every
// run of this example prints exactly the same report), simulates it
// under a fixed-configuration baseline and under the PMEM-aware
// policy, and prints the per-job schedule and the aggregate
// comparison.
package main

import (
	"fmt"
	"log"

	"pmemsched"
	"pmemsched/internal/cluster"
	"pmemsched/internal/units"
)

func main() {
	// One run engine for everything: every policy's duration estimates
	// and the recommender's profiling runs share its memoizing cache,
	// so the whole comparison costs one sweep of the suite.
	rt := pmemsched.NewRunner(pmemsched.DefaultEnv(), 0)
	est := cluster.NewEstimator(rt)

	// The bundled trace: each suite workflow once, seeded random order,
	// Poisson arrivals with a 5s mean — enough pressure on two nodes
	// that configuration choice compounds into queueing delay.
	tr, err := cluster.SuiteTrace(7, 5*units.Second)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("arrival trace (first 6 jobs):")
	for _, j := range tr.Jobs[:6] {
		fmt.Printf("  t=%7.2fs  job %-2d  %s\n", j.ArrivalSeconds, j.ID, j.Workflow)
	}
	fmt.Printf("  ... %d jobs total\n\n", len(tr.Jobs))

	// Baseline: EASY backfilling with one configuration for every job,
	// the site-wide default an operator would hard-code.
	baseline, err := cluster.Simulate(tr, cluster.Options{
		Nodes:     2,
		Policy:    cluster.EASY(pmemsched.SLocW),
		Estimator: est,
	})
	if err != nil {
		log.Fatal(err)
	}

	// PMEM-aware: identical queueing discipline, but each job runs
	// under the configuration Table II recommends for its features.
	aware, err := cluster.Simulate(tr, cluster.Options{
		Nodes:     2,
		Policy:    cluster.PMEMAware(),
		Estimator: est,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("pmem-aware schedule:")
	for _, r := range aware.Records {
		fmt.Printf("  job %-2d %-22s -> node %d %-7s start %7.2fs wait %6.2fs bsld %.3f\n",
			r.ID, r.Workflow, r.Node, r.Config, r.StartSeconds, r.WaitSeconds, r.BoundedSlowdown)
	}

	b, a := baseline.Summary(), aware.Summary()
	fmt.Printf("\n%-12s %14s %14s %12s %10s\n", "policy", "mean wait (s)", "mean bsld", "makespan", "util")
	for _, s := range []cluster.Summary{b, a} {
		fmt.Printf("%-12s %14.2f %14.3f %11.2fs %9.1f%%\n",
			s.Policy, s.MeanWaitSeconds, s.MeanBoundedSlowdown, s.MakespanSeconds, 100*s.MeanUtilization)
	}
	fmt.Printf("\nPMEM-aware cuts mean bounded slowdown by %.0f%% and mean wait by %.0f%% versus the fixed default.\n",
		100*(1-a.MeanBoundedSlowdown/b.MeanBoundedSlowdown),
		100*(1-a.MeanWaitSeconds/b.MeanWaitSeconds))
}
