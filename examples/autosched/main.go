// Autosched demonstrates the paper's future work made concrete: a
// scheduler that profiles an unknown workflow's components standalone
// (measuring the §IV-A I/O indexes), classifies it into Table II's
// feature space, picks a configuration, and verifies the pick against
// the exhaustive oracle.
package main

import (
	"fmt"
	"log"

	"pmemsched"
)

func main() {
	env := pmemsched.DefaultEnv()

	// A workflow that appears nowhere in the paper's suite: a custom
	// simulation with a bimodal snapshot (a few large field arrays plus
	// many small diagnostic blocks) and a moderately compute-heavy
	// analytics.
	sim := pmemsched.Component{
		Name:                "custom-climate",
		ComputePerIteration: 0.8,
		Objects: []pmemsched.ObjectSpec{
			{Bytes: 96 << 20, CountPerRank: 2},  // two 96 MiB field arrays
			{Bytes: 8 << 10, CountPerRank: 500}, // five hundred 8 KiB diagnostics
		},
	}
	analytics := pmemsched.AnalyticsKernel{
		Name:             "feature-tracker",
		ComputePerObject: 300e-6, // 300 µs of tracking per object
	}
	wf := pmemsched.Couple("climate+tracker", sim, analytics, 16, 10)

	// Step 1+2: profile and classify (this is what a scheduler would do
	// once, from the workflow's launch parameters and a dry run).
	features, err := pmemsched.Classify(wf, env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured features: %s\n", features)
	fmt.Printf("  sim I/O index %.2f, analytics I/O index %.2f\n",
		features.SimProfile.IOIndex, features.AnaProfile.IOIndex)

	// Step 3: Table II lookup.
	rec, err := pmemsched.Recommend(features)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rule: Table II row %d (distance %.0f) -> %s\n",
		rec.Row.ID, rec.Distance, rec.Config.Label())

	// Step 4: execute and verify against the oracle.
	out, err := pmemsched.AutoSchedule(wf, env, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled %s: %.2fs\n", out.Recommendation.Config.Label(), out.Chosen.TotalSeconds)
	fmt.Printf("oracle best %s: %.2fs\n", out.Oracle.Best.Config.Label(), out.Oracle.Best.TotalSeconds)
	fmt.Printf("regret of the rule-based choice: %.1f%%\n", out.Regret*100)
	// Print in Table I order — ranging over the Normalized map directly
	// would shuffle the lines from run to run.
	norm := out.Oracle.Normalized()
	for _, cfg := range pmemsched.Configs {
		fmt.Printf("  %-7s %.2fx\n", cfg.Label(), norm[cfg])
	}
}
