// MiniAMR in-situ: sweep concurrency for the miniAMR + analytics
// workflows and watch the optimal configuration move exactly as the
// paper's Figs 8 and 9 report — parallel read-local at 8 ranks, serial
// at 16, serial write-local at 24 — and flip placement when the
// analytics kernel interleaves compute.
package main

import (
	"fmt"
	"log"

	"pmemsched"
)

func main() {
	env := pmemsched.DefaultEnv()

	families := []struct {
		name string
		mk   func(int) pmemsched.Workflow
	}{
		{"miniAMR + Read-Only (Fig 8)", pmemsched.MiniAMRReadOnly},
		{"miniAMR + MatrixMult (Fig 9)", pmemsched.MiniAMRMatrixMult},
	}
	for _, fam := range families {
		fmt.Println(fam.name)
		for _, ranks := range []int{8, 16, 24} {
			wf := fam.mk(ranks)
			dec, err := pmemsched.Oracle(wf, env)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %2d ranks: best %-7s", ranks, dec.Best.Config.Label())
			for _, r := range dec.Results {
				fmt.Printf("  %s=%.2fs", r.Config.Label(), r.TotalSeconds)
			}
			fmt.Println()
		}
		fmt.Println()
	}

	// The writer/reader split of a serial run — the paper's split-bar
	// view, showing where remote placement hurts.
	wf := pmemsched.MiniAMRReadOnly(24)
	for _, cfg := range []pmemsched.Config{pmemsched.SLocW, pmemsched.SLocR} {
		res, err := pmemsched.Run(wf, cfg, env)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s @24: writer %.2fs + reader %.2fs = %.2fs (writer device time %.2fs, software %.2fs)\n",
			cfg.Label(), res.WriterSplit, res.ReaderSplit, res.TotalSeconds,
			res.Writer.IO, res.Writer.SW)
	}
}
