// Stack compare: run the same workflows over both PMEM transports —
// the NOVA kernel filesystem and the NVStream userspace object store —
// reproducing §VII's observation that the configuration trade-offs
// hold across storage mechanisms while software overhead shifts the
// small-object results.
package main

import (
	"fmt"
	"log"

	"pmemsched"
	"pmemsched/internal/stack"
	"pmemsched/internal/stack/nova"
	"pmemsched/internal/stack/nvstream"
)

func main() {
	novaEnv := pmemsched.DefaultEnv()
	novaEnv.NewStack = func() stack.Instance { return nova.Default() }
	nvEnv := pmemsched.DefaultEnv()
	nvEnv.NewStack = func() stack.Instance { return nvstream.Default() }

	workflows := []pmemsched.Workflow{
		pmemsched.MicroWorkflow(pmemsched.MicroObjectLarge, 16),
		pmemsched.MicroWorkflow(pmemsched.MicroObjectSmall, 16),
		pmemsched.GTCReadOnly(24),
		pmemsched.MiniAMRReadOnly(16),
	}
	fmt.Printf("%-28s %-22s %-22s\n", "workflow", "NOVA (best, runtime)", "NVStream (best, runtime)")
	for _, wf := range workflows {
		nd, err := pmemsched.Oracle(wf, novaEnv)
		if err != nil {
			log.Fatal(err)
		}
		vd, err := pmemsched.Oracle(wf, nvEnv)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %-7s %12.2fs  %-7s %12.2fs\n", wf.Name,
			nd.Best.Config.Label(), nd.Best.TotalSeconds,
			vd.Best.Config.Label(), vd.Best.TotalSeconds)
	}

	// Per-operation software cost is the whole difference: show it.
	fs, st := nova.Default(), nvstream.Default()
	fmt.Println("\nper-operation software cost (2 KiB objects):")
	fmt.Printf("  NOVA     write %.2fµs  read %.2fµs\n", fs.WriteCost(2048)*1e6, fs.ReadCost(2048)*1e6)
	fmt.Printf("  NVStream write %.2fµs  read %.2fµs\n", st.WriteCost(2048)*1e6, st.ReadCost(2048)*1e6)
}
