// Batch queue: schedule a mixed queue of workflows on the node with
// per-workflow configuration decisions from Table II, and compare the
// makespan against every fixed single-configuration site policy — the
// "future workflow schedulers" scenario the paper's conclusions
// motivate.
package main

import (
	"fmt"
	"log"

	"pmemsched"
)

func main() {
	// The run engine plans the queue: profiling and the per-(workflow,
	// configuration) executions run concurrently on its worker pool, and
	// the memoized recommended runs are shared with the fixed-policy
	// comparison.
	rt := pmemsched.NewRunner(pmemsched.DefaultEnv(), 0)
	queue := []pmemsched.Workflow{
		pmemsched.MicroWorkflow(pmemsched.MicroObjectLarge, 24), // bandwidth-bound streamer
		pmemsched.GTCReadOnly(8),                                // compute-heavy, low concurrency
		pmemsched.MiniAMRReadOnly(16),                           // small objects, I/O-heavy
		pmemsched.MiniAMRMatrixMult(24),                         // small objects + compute analytics
		pmemsched.GTCMatrixMult(16),                             // large objects + compute analytics
	}

	plan, err := rt.ScheduleQueue(queue)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-workflow schedule:")
	for _, it := range plan.Items {
		fmt.Printf("  %-26s rule #%-2d -> %-7s %8.2fs\n",
			it.Workflow.Name, it.Recommendation.Row.ID,
			it.Recommendation.Config.Label(), it.Result.TotalSeconds)
	}
	fmt.Printf("adaptive makespan: %.2fs\n\n", plan.MakespanSeconds)

	fmt.Println("fixed site-wide policies:")
	for _, cfg := range pmemsched.Configs {
		fmt.Printf("  everything under %-7s %8.2fs\n", cfg.Label(), plan.FixedMakespans[cfg])
	}
	bestCfg, bestFixed := plan.BestFixed()
	fmt.Printf("\nbest fixed policy: %s (%.2fs)\n", bestCfg.Label(), bestFixed)
	fmt.Printf("adaptive saving vs best fixed: %.1f%%\n", plan.Saving()*100)

	s := rt.Stats()
	fmt.Printf("engine: %d distinct runs for %d requests (%d served from cache)\n",
		s.Misses, s.Runs(), s.Hits+s.Inflight)
}
