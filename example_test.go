package pmemsched_test

import (
	"fmt"

	"pmemsched"
)

// ExampleRecommend shows the Table II rule engine on a feature tuple
// built by hand — the pure-lookup path a scheduler can take when the
// workflow's characteristics are already known from its launch
// parameters.
func ExampleRecommend() {
	features := pmemsched.Features{
		SimCompute: 3, // high  (compute-dominated simulation)
		SimWrite:   1, // low
		AnaCompute: 0, // nil   (read-only analytics)
		AnaRead:    3, // high
		ObjectSize: 1, // large objects
		Conc:       2, // high concurrency (24 ranks)
	}
	rec, err := pmemsched.Recommend(features)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Table II row %d -> %s\n", rec.Row.ID, rec.Config.Label())
	// Output: Table II row 2 -> S-LocW
}

// ExampleParseConfig round-trips a configuration label.
func ExampleParseConfig() {
	cfg, _ := pmemsched.ParseConfig("p-locr")
	fmt.Println(cfg.Label(), cfg.Mode, cfg.Placement)
	// Output: P-LocR parallel remote-write-local-read
}

// ExampleRun executes one suite workload under one configuration on
// the simulated testbed.
func ExampleRun() {
	wf := pmemsched.GTCReadOnly(8)
	res, err := pmemsched.Run(wf, pmemsched.SLocW, pmemsched.DefaultEnv())
	if err != nil {
		panic(err)
	}
	fmt.Printf("serial split: writer then reader, total = writer + reader: %v\n",
		res.TotalSeconds == res.WriterSplit+res.ReaderSplit)
	// Output: serial split: writer then reader, total = writer + reader: true
}

// ExampleTableII shows the rule base is plain data.
func ExampleTableII() {
	rows := pmemsched.TableII()
	fmt.Printf("%d rows; row 1 recommends %s for %s\n",
		len(rows), rows[0].Config.Label(), rows[0].Illustrative)
	// Output: 10 rows; row 1 recommends S-LocW for 64MB workflows: Fig 4a,4b,4c
}
