module pmemsched

go 1.22
